package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := r.Gauge("bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}

	// Nil handles discard updates instead of panicking.
	var nc *Counter
	nc.Inc()
	nc.Add(3)
	if nc.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var ng *Gauge
	ng.Set(9)
	if ng.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var nh *Histogram
	nh.Observe(time.Second)
	if nh.Count() != 0 || nh.Snapshot().Count != 0 {
		t.Fatal("nil histogram should stay empty")
	}
}

// TestRegistryConcurrency hammers handle resolution and updates from many
// goroutines; run under -race it audits the registry's synchronization.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			own := r.Counter(fmt.Sprintf("own-%d", g%4))
			for i := 0; i < perG; i++ {
				c.Inc()
				own.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("lat").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var ownTotal int64
	for i := 0; i < 4; i++ {
		ownTotal += r.Counter(fmt.Sprintf("own-%d", i)).Value()
	}
	if ownTotal != goroutines*perG {
		t.Fatalf("own counters sum = %d, want %d", ownTotal, goroutines*perG)
	}
}

// TestCounterHotPathAllocs is the acceptance-criteria guard: with handles
// resolved up front, the metric updates a query performs (counter adds, a
// gauge set, a histogram observation) must not allocate.
func TestCounterHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("bytes")
	h := r.Histogram("lat")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(42)
		h.Observe(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("metric hot path allocates %.1f per op, want 0", allocs)
	}
}

// TestDisabledSpanAllocs checks the disabled tracer costs nothing: child
// creation and attributes on a nil span must not allocate.
func TestDisabledSpanAllocs(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("combo")
		c.Attr("verdict", "executed")
		c.AttrInt("tuples", 10)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~100us, 10 at ~10ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d, want 111", s.Count)
	}
	wantSum := int64(100*100 + 10*10000 + 1000000)
	if s.SumUS != wantSum {
		t.Fatalf("sum = %dus, want %dus", s.SumUS, wantSum)
	}
	// P50 falls in the 100us bucket (upper bound 128us), P99 in the 10ms
	// bucket (upper bound 16384us).
	if s.P50US != 128 {
		t.Fatalf("p50 = %dus, want 128us", s.P50US)
	}
	if s.P99US != 16384 {
		t.Fatalf("p99 = %dus, want 16384us", s.P99US)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestRegistryResetAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a"] != 7 || s.Gauges["g"] != 3 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	r.Reset()
	if c.Value() != 0 {
		t.Fatal("reset did not zero the counter through the old handle")
	}
	s = r.Snapshot()
	if s.Counters["a"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("post-reset snapshot = %+v", s)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("execute")
	lookup := root.Child("lookup")
	lookup.Attr("verdict", "hit")
	lookup.End()
	dc := root.Child("delta-compensation")
	combo := dc.Child("Header[0].main x Item[0].delta")
	combo.Attr("verdict", "executed")
	combo.AttrInt("tuples", 42)
	combo.End()
	dc.End()
	root.End()

	if v, ok := lookup.GetAttr("verdict"); !ok || v != "hit" {
		t.Fatalf("lookup verdict = %q, %v", v, ok)
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name) })
	if len(names) != 4 || names[0] != "execute" || names[3] != "Header[0].main x Item[0].delta" {
		t.Fatalf("walk order = %v", names)
	}

	var sb strings.Builder
	root.Render(&sb)
	out := sb.String()
	for _, want := range []string{"execute", "├─ lookup", "└─ delta-compensation", "verdict=hit", "tuples=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}

	// Spans marshal to JSON for machine consumption.
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"name":"execute"`) {
		t.Fatalf("json = %s", b)
	}
}

func TestDebugEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(5)
	dump := func() any {
		return []map[string]any{{"key": "q1", "profit": 1.5}}
	}
	addr, err := ServeDebug("127.0.0.1:0", r, DebugOptions{CacheDump: dump})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	if got := get("/metrics"); !strings.Contains(got, `"cache.hits": 5`) {
		t.Fatalf("/metrics = %s", got)
	}
	if got := get("/debug/cache"); !strings.Contains(got, `"key": "q1"`) {
		t.Fatalf("/debug/cache = %s", got)
	}
}
