package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeDebugEndToEnd is the end-to-end HTTP test of the full debug
// surface on a real listener: /metrics in both formats, /debug/series,
// /debug/cache (including the empty-cache shape), method policy, caching
// policy, and pprof.
func TestServeDebugEndToEnd(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(5)
	r.Histogram("latency.query").Observe(250 * time.Microsecond)
	sampler := NewSampler(r, SamplerConfig{Interval: time.Hour, Capacity: 8})
	sampler.SampleOnce()

	rec := NewRecorder(RecorderConfig{Capacity: 4})
	traceID := rec.Record(parallelTree())

	var dumpResult any = nil // empty cache: a nil slice, the regression case
	advisorSource := func() (any, string) {
		return map[string]int{"decisions": 3}, "== cache advisor ==\n"
	}
	slo := NewSLO(SLOConfig{Target: time.Millisecond, Slots: 8, ShortSlots: 2})
	slo.Record(100*time.Microsecond, false)
	slo.Record(5*time.Millisecond, false)
	shapes := NewShapes(8, 4)
	shapes.Observe("T[A]P[A:x = ?]", 300*time.Microsecond, true, false, 40, 7)
	addr, err := ServeDebug("127.0.0.1:0", r, DebugOptions{
		CacheDump: func() any { return dumpResult },
		Sampler:   sampler,
		Recorder:  rec,
		Advisor:   advisorSource,
		SLO:       slo,
		Governor:  func() any { return map[string]int{"merges": 2} },
		Shapes:    shapes,
	})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}

	// /metrics JSON.
	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", cc)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	if snap.Counters["cache.hits"] != 5 {
		t.Fatalf("/metrics counters = %v", snap.Counters)
	}

	// /metrics Prometheus text format.
	resp, body = get("/metrics?format=prom")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE aggcache_cache_hits counter",
		"aggcache_cache_hits 5",
		`aggcache_latency_query_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom output missing %q:\n%s", want, body)
		}
	}

	// /debug/series returns the sampler's ring buffers.
	_, body = get("/debug/series")
	var series map[string][]Sample
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/debug/series is not a series map: %v", err)
	}
	if len(series["cache.hits"]) != 1 || series["cache.hits"][0].Value != 5 {
		t.Fatalf("/debug/series cache.hits = %v", series["cache.hits"])
	}

	// /debug/series?last=N trims each series to its newest N points.
	sampler.SampleOnce()
	sampler.SampleOnce()
	_, body = get("/debug/series?last=1")
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/debug/series?last=1 is not a series map: %v", err)
	}
	if len(series["cache.hits"]) != 1 {
		t.Fatalf("/debug/series?last=1 cache.hits has %d points, want 1", len(series["cache.hits"]))
	}
	if resp, _ := get("/debug/series?last=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/debug/series?last=0 status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get("/debug/series?last=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/debug/series?last=bogus status = %d, want 400", resp.StatusCode)
	}

	// /debug/slo carries the SLO report plus the governor snapshot.
	resp, body = get("/debug/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo status = %d", resp.StatusCode)
	}
	var sloPayload struct {
		SLO      SLOReport      `json:"slo"`
		Governor map[string]int `json:"governor"`
	}
	if err := json.Unmarshal([]byte(body), &sloPayload); err != nil {
		t.Fatalf("/debug/slo payload: %v", err)
	}
	if sloPayload.SLO.LongTotal != 2 || sloPayload.SLO.LongBad != 1 {
		t.Fatalf("/debug/slo report = %+v", sloPayload.SLO)
	}
	if sloPayload.Governor["merges"] != 2 {
		t.Fatalf("/debug/slo governor = %v", sloPayload.Governor)
	}

	// /debug/shapes lists the per-shape profiles.
	_, body = get("/debug/shapes")
	var profs []ShapeProfile
	if err := json.Unmarshal([]byte(body), &profs); err != nil {
		t.Fatalf("/debug/shapes payload: %v", err)
	}
	if len(profs) != 1 || profs[0].Shape != "T[A]P[A:x = ?]" || profs[0].Hits != 1 {
		t.Fatalf("/debug/shapes = %+v", profs)
	}

	// /debug/cache must render an empty cache as [], never null.
	_, body = get("/debug/cache")
	if got := strings.TrimSpace(body); got != "[]" {
		t.Fatalf("/debug/cache empty dump = %q, want []", got)
	}
	dumpResult = []map[string]any{{"key": "q1"}}
	_, body = get("/debug/cache")
	if !strings.Contains(body, `"key": "q1"`) {
		t.Fatalf("/debug/cache = %s", body)
	}

	// /debug/advisor serves the what-if report as JSON and rendered text.
	resp, body = get("/debug/advisor")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"decisions": 3`) {
		t.Fatalf("/debug/advisor = %d %q", resp.StatusCode, body)
	}
	resp, body = get("/debug/advisor?format=text")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("advisor text Content-Type = %q", ct)
	}
	if !strings.Contains(body, "cache advisor") {
		t.Fatalf("/debug/advisor?format=text = %q", body)
	}

	// /debug/traces: listing, span-tree fetch, trace-event export, and the
	// not-retained/bad-id error paths.
	_, body = get("/debug/traces")
	var sums []TraceSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatalf("/debug/traces is not a summary list: %v", err)
	}
	if len(sums) != 1 || sums[0].ID != traceID || sums[0].Name != "execute q" {
		t.Fatalf("/debug/traces = %+v", sums)
	}
	_, body = get("/debug/traces?id=1")
	var tr TraceRecord
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/debug/traces?id=1 is not a TraceRecord: %v", err)
	}
	if tr.ID != traceID || tr.Root == nil || tr.Root.Name != "execute q" {
		t.Fatalf("fetched trace = %+v", tr)
	}
	resp, body = get("/debug/traces?id=1&format=trace_event")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace_event Content-Type = %q", ct)
	}
	var tf struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tf); err != nil || len(tf.TraceEvents) == 0 {
		t.Fatalf("trace_event export invalid (%v):\n%s", err, body)
	}
	if resp, _ := get("/debug/traces?id=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/debug/traces?id=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace id status = %d, want 400", resp.StatusCode)
	}

	// Non-GET is rejected with 405 and an Allow header.
	presp, err := http.Post("http://"+addr+"/metrics", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", presp.StatusCode)
	}
	if allow := presp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("405 Allow header = %q", allow)
	}

	// pprof is wired on the same mux.
	resp, body = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status = %d body %q", resp.StatusCode, body)
	}
}

func TestDebugMuxNilSamplerAndDump(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0", NewRegistry(), DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Sources that are absent 404: the advisor without a decision ledger,
	// the SLO surface without a tracker, the shapes surface without a
	// profiler.
	for _, path := range []string{"/debug/advisor", "/debug/slo", "/debug/shapes"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without a source = %d, want 404", path, resp.StatusCode)
		}
	}
	for path, want := range map[string]string{
		"/debug/series": "{}",
		"/debug/cache":  "[]",
		"/debug/traces": "[]",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if got := strings.TrimSpace(string(b)); got != want {
			t.Fatalf("%s = %q, want %q", path, got, want)
		}
	}
}

// TestDebugIndexAndNewEndpoints covers the root index page and the
// audit/bundle endpoints: the index lists every endpoint with its enabled
// flag, non-root unknown paths 404, and the audit/bundle handlers serve
// their payload thunks (404 when absent).
func TestDebugIndexAndNewEndpoints(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0", NewRegistry(), DebugOptions{
		Audit:  func() any { return map[string]bool{"ok": true} },
		Bundle: func() any { return map[string]int{"schema_version": 1} },
		Shards: func() any { return map[string]int{"shards": 4} },
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	var index []DebugEndpoint
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byPath := make(map[string]DebugEndpoint, len(index))
	for _, e := range index {
		byPath[e.Path] = e
	}
	for _, path := range []string{"/metrics", "/debug/audit", "/debug/bundle", "/debug/shards", "/debug/pprof/"} {
		if _, ok := byPath[path]; !ok {
			t.Fatalf("index missing %s: %+v", path, index)
		}
	}
	if !byPath["/debug/audit"].Enabled || byPath["/debug/advisor"].Enabled {
		t.Fatalf("index enabled flags wrong: %+v", index)
	}

	// Unknown paths under / still 404.
	resp, err = http.Get("http://" + addr + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/debug/audit")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"ok": true`) {
		t.Fatalf("/debug/audit = %q", b)
	}

	resp, err = http.Get("http://" + addr + "/debug/shards")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"shards": 4`) {
		t.Fatalf("/debug/shards = %q", b)
	}

	resp, err = http.Get("http://" + addr + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "aggcache-bundle.json") {
		t.Fatalf("bundle Content-Disposition = %q", cd)
	}
	resp.Body.Close()
	if !strings.Contains(string(b), `"schema_version": 1`) {
		t.Fatalf("/debug/bundle = %q", b)
	}

	// Absent audit/bundle sources 404 (second mux on a fresh port).
	addr2, err := ServeDebug("127.0.0.1:0", NewRegistry(), DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/audit", "/debug/bundle", "/debug/shards"} {
		resp, err := http.Get("http://" + addr2 + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without a source = %d, want 404", path, resp.StatusCode)
		}
	}
}
