package obs

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty ring Len = %d", got)
	}
	for i := 1; i <= 5; i++ {
		r.Push(Sample{UnixMS: int64(i), Value: float64(i)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	got := r.Samples()
	want := []int64{3, 4, 5}
	for i, s := range got {
		if s.UnixMS != want[i] {
			t.Fatalf("samples = %v, want timestamps %v", got, want)
		}
	}
	// Partial fill stays oldest-first too.
	r2 := NewRing(4)
	r2.Push(Sample{UnixMS: 7})
	r2.Push(Sample{UnixMS: 8})
	s2 := r2.Samples()
	if len(s2) != 2 || s2[0].UnixMS != 7 || s2[1].UnixMS != 8 {
		t.Fatalf("partial samples = %v", s2)
	}
}

func TestSamplerScrapesAllMetricKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(5)
	r.Gauge("cache.bytes").Set(1024)
	r.Histogram("latency.query").Observe(100 * time.Microsecond)
	r.Histogram("latency.query").Observe(200 * time.Microsecond)

	s := NewSampler(r, SamplerConfig{Interval: time.Hour, Capacity: 8})
	fake := time.UnixMilli(1000)
	s.now = func() time.Time { return fake }
	s.SampleOnce()
	r.Counter("cache.hits").Add(2)
	fake = time.UnixMilli(2000)
	s.SampleOnce()

	dump := s.Dump()
	hits := dump["cache.hits"]
	if len(hits) != 2 || hits[0].Value != 5 || hits[1].Value != 7 {
		t.Fatalf("cache.hits series = %v", hits)
	}
	if hits[0].UnixMS != 1000 || hits[1].UnixMS != 2000 {
		t.Fatalf("cache.hits timestamps = %v", hits)
	}
	if g := dump["cache.bytes"]; len(g) != 2 || g[0].Value != 1024 {
		t.Fatalf("cache.bytes series = %v", g)
	}
	for _, suffix := range []string{".count", ".mean_us", ".p50_us", ".p99_us"} {
		if _, ok := dump["latency.query"+suffix]; !ok {
			t.Fatalf("missing histogram-derived series latency.query%s; have %v", suffix, s.SeriesNames())
		}
	}
	if c := dump["latency.query.count"]; c[0].Value != 2 {
		t.Fatalf("latency.query.count = %v, want 2", c)
	}
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	s := NewSampler(r, SamplerConfig{Interval: time.Millisecond, Capacity: 16})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Dump()["c"]) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler collected nothing within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	n := len(s.Dump()["c"])
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Dump()["c"]); got != n {
		t.Fatalf("sampler still scraping after Stop: %d -> %d", n, got)
	}
	// Restartable after Stop.
	s.Start()
	defer s.Stop()
	deadline = time.Now().Add(2 * time.Second)
	for len(s.Dump()["c"]) == n {
		if time.Now().After(deadline) {
			t.Fatal("restarted sampler collected nothing within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSamplerConcurrentStop hammers Stop from many goroutines at once
// (run under -race in CI): exactly one caller closes the stop channel, the
// rest are no-ops, and no scrape goroutine survives — repeated
// start/stop cycles must leave the goroutine count where it began.
func TestSamplerConcurrentStop(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	r.Counter("c").Inc()
	for cycle := 0; cycle < 10; cycle++ {
		s := NewSampler(r, SamplerConfig{Interval: time.Millisecond, Capacity: 8})
		s.Start()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Stop()
			}()
		}
		wg.Wait()
		s.Stop() // double Stop after the race settles: still a no-op
	}
	// The loop goroutine exits before Stop returns (<-done), so any excess
	// here is a leak, not scheduling lag — but allow a short settle for
	// unrelated runtime goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 10 start/stop cycles", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSamplerHotPathAllocs is the acceptance-criteria guard: with a sampler
// scraping the registry as fast as it can, the query hot path's metric
// updates must still be allocation-free — sampling reads the same atomics
// the writers update and takes no lock the write side contends on.
func TestSamplerHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("bytes")
	h := r.Histogram("lat")
	s := NewSampler(r, SamplerConfig{Interval: time.Microsecond, Capacity: 64})
	s.Start()
	defer s.Stop()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(42)
		h.Observe(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f per op with sampler running, want 0", allocs)
	}
}

// TestSamplerRotates pins the ungoverned-process window rotation: a
// sampler wired with a Rotate hook fires it on the RotateEvery cadence —
// at most once per due interval, never more — so SLO windows and
// per-shape quantiles rotate even when no governor runs.
func TestSamplerRotates(t *testing.T) {
	r := NewRegistry()
	rotations := 0
	s := NewSampler(r, SamplerConfig{
		Interval:    time.Hour,
		Capacity:    8,
		Rotate:      func() { rotations++ },
		RotateEvery: time.Second,
	})
	fake := time.UnixMilli(0)
	s.now = func() time.Time { return fake }

	s.SampleOnce() // first scrape seeds lastRotate and rotates once
	if rotations != 1 {
		t.Fatalf("rotations after first scrape = %d, want 1", rotations)
	}
	fake = fake.Add(500 * time.Millisecond)
	s.SampleOnce() // not due yet
	if rotations != 1 {
		t.Fatalf("rotated before RotateEvery elapsed: %d", rotations)
	}
	fake = fake.Add(600 * time.Millisecond)
	s.SampleOnce() // 1.1s since last rotation
	if rotations != 2 {
		t.Fatalf("rotations after due interval = %d, want 2", rotations)
	}
}
