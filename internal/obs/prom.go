package obs

import (
	"fmt"
	"io"
	"strings"
)

// promNamespace prefixes every exposed metric so the engine's series are
// unambiguous on a shared Prometheus server.
const promNamespace = "aggcache_"

// promName maps a registry metric name to a valid Prometheus metric name:
// namespace prefix, dots and dashes to underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, each
// histogram as cumulative `_bucket{le="..."}` samples (upper bounds in
// microseconds, matching the registry's native unit) plus `_sum` and
// `_count`. Output is deterministically ordered by metric name.
func WriteProm(w io.Writer, s Snapshot) {
	for _, name := range Names(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range Names(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range Names(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name + "_us")
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.UpperUS, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.SumUS)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}
