package obs

import (
	"sync"
	"time"
)

// Recorder is the query flight recorder: a bounded ring buffer of the last
// N completed query traces plus a slow-query log that always retains traces
// whose wall clock exceeded a latency threshold — so a slow outlier is
// still inspectable after the ring has cycled past it. It backs the
// /debug/traces endpoint and the aggsql \traces command.
//
// A nil *Recorder is the disabled recorder: Enabled reports false and
// Record is a no-op, so the cache manager's per-query hook costs one nil
// check and zero allocations when flight recording is off (the default) —
// TestDisabledRecorderAllocs asserts this.
//
// Recorder is safe for concurrent use: queries record from many goroutines
// while HTTP handlers list and fetch. Recorded spans must be complete
// (End called, no further mutation) — the recorder shares the span tree
// with readers rather than copying it.
type Recorder struct {
	cfg RecorderConfig

	mu   sync.Mutex
	seq  int64
	ring []*TraceRecord // fixed capacity, oldest overwritten
	next int
	full bool
	slow []*TraceRecord // FIFO, oldest evicted at SlowCapacity
}

// RecorderConfig tunes retention.
type RecorderConfig struct {
	// Capacity is the ring size — how many recent traces are kept; 0 means
	// DefaultTraceCapacity.
	Capacity int
	// SlowThreshold marks traces at or above this duration as slow; they
	// are retained in the slow log even after the ring cycles past them.
	// 0 disables the slow log.
	SlowThreshold time.Duration
	// SlowCapacity bounds the slow log; 0 means DefaultSlowCapacity.
	SlowCapacity int
}

// Recorder defaults: 64 recent traces, 32 retained slow traces.
const (
	DefaultTraceCapacity = 64
	DefaultSlowCapacity  = 32
)

// TraceRecord is one retained query trace.
type TraceRecord struct {
	// ID is the recorder-assigned sequence number, unique per recorder and
	// increasing in completion order.
	ID int64 `json:"id"`
	// Slow marks traces that met the slow threshold.
	Slow bool `json:"slow,omitempty"`
	// Root is the trace's span tree.
	Root *Span `json:"root"`
}

// TraceSummary is the listing row for one retained trace — everything
// /debug/traces and \traces print without loading the span tree.
type TraceSummary struct {
	ID          int64  `json:"id"`
	Name        string `json:"name"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurNS       int64  `json:"dur_ns"`
	Slow        bool   `json:"slow,omitempty"`
	Spans       int    `json:"spans"`
}

// NewRecorder returns a recorder with the given retention policy.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultTraceCapacity
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	return &Recorder{cfg: cfg, ring: make([]*TraceRecord, cfg.Capacity)}
}

// Enabled reports whether traces are retained; a nil receiver reports
// false. Callers gate span-tree construction on it so untraced executions
// stay allocation-free.
func (r *Recorder) Enabled() bool { return r != nil }

// Record retains a completed trace and returns its assigned id (0 when the
// recorder is disabled or root is nil). The span tree must not be mutated
// after Record.
func (r *Recorder) Record(root *Span) int64 {
	if r == nil || root == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec := &TraceRecord{ID: r.seq, Root: root}
	if r.cfg.SlowThreshold > 0 && root.Dur >= r.cfg.SlowThreshold {
		rec.Slow = true
		if len(r.slow) == r.cfg.SlowCapacity {
			copy(r.slow, r.slow[1:])
			r.slow = r.slow[:len(r.slow)-1]
		}
		r.slow = append(r.slow, rec)
	}
	r.ring[r.next] = rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	return rec.ID
}

// List summarizes every retained trace — the ring union the slow log,
// newest first. A nil recorder lists nothing.
func (r *Recorder) List() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[int64]bool, len(r.ring)+len(r.slow))
	recs := make([]*TraceRecord, 0, len(r.ring)+len(r.slow))
	collect := func(rec *TraceRecord) {
		if rec != nil && !seen[rec.ID] {
			seen[rec.ID] = true
			recs = append(recs, rec)
		}
	}
	// Ring newest-first: entries before next are newer than those after.
	for i := r.next - 1; i >= 0; i-- {
		collect(r.ring[i])
	}
	if r.full {
		for i := len(r.ring) - 1; i >= r.next; i-- {
			collect(r.ring[i])
		}
	}
	for i := len(r.slow) - 1; i >= 0; i-- {
		collect(r.slow[i])
	}
	// The slow log only holds ids older than the ring's, so a final sort by
	// descending id restores global newest-first order.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].ID > recs[j-1].ID; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	out := make([]TraceSummary, len(recs))
	for i, rec := range recs {
		out[i] = summarize(rec)
	}
	return out
}

// Get returns the retained trace with the given id.
func (r *Recorder) Get(id int64) (*TraceRecord, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.ring {
		if rec != nil && rec.ID == id {
			return rec, true
		}
	}
	for _, rec := range r.slow {
		if rec.ID == id {
			return rec, true
		}
	}
	return nil, false
}

// Len reports how many distinct traces are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.List())
}

func summarize(rec *TraceRecord) TraceSummary {
	spans := 0
	rec.Root.Walk(func(*Span) { spans++ })
	return TraceSummary{
		ID:          rec.ID,
		Name:        rec.Root.Name,
		StartUnixNS: rec.Root.StartTime().UnixNano(),
		DurNS:       int64(rec.Root.Dur),
		Slow:        rec.Slow,
		Spans:       spans,
	}
}
