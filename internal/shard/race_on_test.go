//go:build race

package shard_test

// raceEnabled loosens timing assertions when the race detector's
// synchronization serialization distorts latencies; see soak_test.go.
const raceEnabled = true
