package shard

import (
	"fmt"
	"time"

	"aggcache/internal/column"
	"aggcache/internal/core"
	"aggcache/internal/expr"
	"aggcache/internal/obs"
	"aggcache/internal/query"
	"aggcache/internal/table"
)

// PruneReason classifies why a whole shard was skipped before dispatch.
type PruneReason int

const (
	// PruneNone means the shard was dispatched.
	PruneNone PruneReason = iota
	// PruneEmpty means a table the query references holds no rows on the
	// shard, so every subjoin combination there is empty.
	PruneEmpty
	// PruneMD means a matching-dependency tid-range prefilter proves the
	// shard-wide join empty: the parent and child tid ranges, taken over
	// all the shard's stores, are disjoint (paper Eq. 5 lifted from store
	// pairs to whole shards).
	PruneMD
	// PruneScan means a query filter is unsatisfiable against the shard's
	// column ranges (dynamic partition pruning, paper Def. 1, applied at
	// shard granularity).
	PruneScan
)

var pruneNames = [...]string{"none", "empty", "md", "scan"}

// String names the reason for span attributes and debug output.
func (p PruneReason) String() string { return pruneNames[p] }

// ExecInfo reports one scatter-gather execution: the dispatch/prune split,
// the delta-locality of the query, and the folded execution statistics.
type ExecInfo struct {
	Strategy core.Strategy
	// Scattered counts shards dispatched; Pruned counts shards skipped
	// before dispatch, split by reason.
	Scattered, Pruned                 int
	PrunedEmpty, PrunedMD, PrunedScan int
	// DeltaShards counts shards holding delta rows of a referenced table;
	// SingleDeltaShard is true when at most one does — the collapsed case
	// the object-aware insert stream is designed to hit.
	DeltaShards      int
	SingleDeltaShard bool
	// Reasons records the per-shard prune verdict in shard order.
	Reasons []PruneReason
	// PerShard holds each dispatched shard's manager-level ExecInfo (zero
	// value for pruned shards).
	PerShard []core.ExecInfo
	// Stats is the shard-order fold of the per-shard execution statistics.
	Stats query.Stats
	// CacheHits counts shards answered from their cache entry.
	CacheHits int
	// Total is the scatter-gather wall clock.
	Total time.Duration
}

// Execute scatters the query across the shards and gathers the per-shard
// aggregation tables into one result.
//
// Shard-order fold invariant: per-shard results are folded in ascending
// shard index, the mirror of the worker-order fold inside
// query.ExecuteJobs (per-job tables merged in job-index order). Together
// the two give byte-identical results and statistics at any
// (shard count x worker count) combination for a fixed shard count, and
// byte-identical results across shard counts — the aggregates are
// additively mergeable and the workloads keep float sums exact.
func (s *Sharded) Execute(q *query.Query, strat core.Strategy) (*query.AggTable, ExecInfo, error) {
	return s.ExecuteSpan(q, strat, nil)
}

// ExecuteSpan is Execute with an optional parent span; per-shard dispatch
// and prune verdicts are recorded as span attributes and children.
func (s *Sharded) ExecuteSpan(q *query.Query, strat core.Strategy, sp *obs.Span) (*query.AggTable, ExecInfo, error) {
	start := time.Now()
	// Warm the memoized fingerprint and shape before the query is shared
	// across shard goroutines.
	q.Fingerprint()
	q.Shape()

	info := ExecInfo{
		Strategy: strat,
		Reasons:  make([]PruneReason, len(s.mgrs)),
		PerShard: make([]core.ExecInfo, len(s.mgrs)),
	}

	// Prune pass: inspect each shard's table-level ranges under its read
	// lock. The verdicts are per-shard snapshots, exactly as scattered
	// executions are; cross-shard reads are independently
	// snapshot-consistent (see DESIGN.md on the consistency model).
	dispatch := make([]int, 0, len(s.mgrs))
	for i := range s.mgrs {
		reason := s.pruneShard(i, q)
		info.Reasons[i] = reason
		if delta := s.shardHasDelta(i, q); delta {
			info.DeltaShards++
		}
		switch reason {
		case PruneNone:
			dispatch = append(dispatch, i)
		case PruneEmpty:
			info.PrunedEmpty++
		case PruneMD:
			info.PrunedMD++
		case PruneScan:
			info.PrunedScan++
		}
	}
	info.Scattered = len(dispatch)
	info.Pruned = len(s.mgrs) - len(dispatch)
	info.SingleDeltaShard = info.DeltaShards <= 1

	// Scatter: one goroutine per dispatched shard. Each shard's manager
	// fans its subjoin combinations into query.ExecuteJobs on its own
	// worker pool.
	results := make([]*query.AggTable, len(s.mgrs))
	errs := make([]error, len(s.mgrs))
	done := make(chan struct{}, len(dispatch))
	for _, i := range dispatch {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			res, einfo, err := s.mgrs[i].Execute(q, strat)
			results[i], info.PerShard[i], errs[i] = res, einfo, err
		}(i)
	}
	for range dispatch {
		<-done
	}
	for _, i := range dispatch {
		if errs[i] != nil {
			return nil, info, fmt.Errorf("shard %d: %w", i, errs[i])
		}
	}

	// Gather: fold per-shard tables and statistics in shard order.
	out := query.NewAggTable(q.Aggs)
	for _, i := range dispatch {
		out.Merge(results[i])
		info.Stats.Add(info.PerShard[i].Stats)
		if info.PerShard[i].CacheHit {
			info.CacheHits++
		}
	}
	info.Total = time.Since(start)

	s.obs.queries.Inc()
	s.obs.scattered.Add(int64(info.Scattered))
	s.obs.pruned.Add(int64(info.Pruned))
	s.obs.prunedEmpty.Add(int64(info.PrunedEmpty))
	s.obs.prunedMD.Add(int64(info.PrunedMD))
	s.obs.prunedScan.Add(int64(info.PrunedScan))
	s.obs.deltaShards.Add(int64(info.DeltaShards))
	if info.SingleDeltaShard {
		s.obs.deltaSingle.Inc()
	}

	if sp != nil {
		sp.AttrInt("shard.scattered", int64(info.Scattered))
		sp.AttrInt("shard.pruned", int64(info.Pruned))
		sp.AttrInt("shard.delta_shards", int64(info.DeltaShards))
		for i, reason := range info.Reasons {
			if reason != PruneNone {
				sp.Attr(fmt.Sprintf("shard.%d", i), "pruned:"+reason.String())
			}
		}
	}
	return out, info, nil
}

// pruneShard decides, before dispatch, whether shard i can contribute any
// row to the query. All checks read only dictionary min/max and row
// counts — never row data — under the shard's read lock.
func (s *Sharded) pruneShard(i int, q *query.Query) PruneReason {
	sh := s.cluster.Shard(i)
	sh.DB.RLock()
	defer sh.DB.RUnlock()

	// Empty prune: queries join their tables (inner joins only), so one
	// fully empty referenced table empties the whole shard.
	for _, name := range q.Tables {
		if tableRows(sh.DB.MustTable(name)) == 0 {
			return PruneEmpty
		}
	}

	// Scan prune: a filter unsatisfiable against the shard-level column
	// ranges (min/max over every store of the table) proves the shard
	// contributes nothing.
	for _, name := range q.Tables {
		pred, ok := q.Filters[name]
		if !ok {
			continue
		}
		t := sh.DB.MustTable(name)
		if expr.ProvablyEmpty(pred, func(col string) (column.Value, column.Value, bool) {
			idx := t.Schema().ColIndex(col)
			if idx < 0 {
				return column.Value{}, column.Value{}, false
			}
			return tableColRange(t, idx)
		}) {
			return PruneScan
		}
	}

	// MD prune: for every matching dependency joining two referenced
	// tables, disjoint shard-level tid ranges prove the shard-wide join
	// empty (the Eq. 5 prefilter with store pairs coarsened to whole
	// tables — sound because the table range bounds every store range).
	for _, m := range sh.Reg.All() {
		if !references(q, m.Parent) || !references(q, m.Child) {
			continue
		}
		if !joined(q, m.Parent, m.Child) {
			continue
		}
		pt, ct := sh.DB.MustTable(m.Parent), sh.DB.MustTable(m.Child)
		plo, phi, pok := tableColRangeI(pt, pt.Schema().MustColIndex(m.ParentTID))
		clo, chi, cok := tableColRangeI(ct, ct.Schema().MustColIndex(m.ChildTID))
		if pok && cok && (phi < clo || chi < plo) {
			return PruneMD
		}
	}
	return PruneNone
}

// shardHasDelta reports whether any referenced table holds delta rows on
// shard i — the delta-locality signal behind shard.delta_single.
func (s *Sharded) shardHasDelta(i int, q *query.Query) bool {
	sh := s.cluster.Shard(i)
	sh.DB.RLock()
	defer sh.DB.RUnlock()
	for _, name := range q.Tables {
		for _, p := range sh.DB.MustTable(name).Partitions() {
			if p.Delta.Rows() > 0 {
				return true
			}
			if p.Delta2 != nil && p.Delta2.Rows() > 0 {
				return true
			}
		}
	}
	return false
}

// references reports whether the query reads the named table.
func references(q *query.Query, name string) bool {
	for _, t := range q.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// joined reports whether the query joins the two tables directly.
func joined(q *query.Query, a, b string) bool {
	for _, j := range q.Joins {
		if (j.Left.Table == a && j.Right.Table == b) || (j.Left.Table == b && j.Right.Table == a) {
			return true
		}
	}
	return false
}

// tableRows counts the physical rows of a table across all partitions and
// stores (main, delta, and an active merge's delta2).
func tableRows(t *table.Table) int {
	n := 0
	for _, p := range t.Partitions() {
		for _, st := range p.Stores() {
			n += st.Rows()
		}
	}
	return n
}

// tableColRange folds a column's dictionary min/max over every store of
// the table. ok is false when every store is empty.
func tableColRange(t *table.Table, col int) (lo, hi column.Value, ok bool) {
	for _, p := range t.Partitions() {
		for _, st := range p.Stores() {
			l, h, sok := st.Col(col).MinMax()
			if !sok {
				continue
			}
			if !ok || column.Less(l, lo) {
				lo = l
			}
			if !ok || column.Less(hi, h) {
				hi = h
			}
			ok = true
		}
	}
	return lo, hi, ok
}

// tableColRangeI is tableColRange for int64 columns (tid columns).
func tableColRangeI(t *table.Table, col int) (lo, hi int64, ok bool) {
	l, h, ok := tableColRange(t, col)
	if !ok {
		return 0, 0, false
	}
	return l.I, h.I, true
}
