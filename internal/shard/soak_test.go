package shard_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"aggcache/internal/column"
	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/shard"
	"aggcache/internal/verify"
	"aggcache/internal/workload"
)

// soakIters scales the soak via AGGCACHE_SOAK_ITERS (CI's soak job raises
// it; the default keeps the in-tree -race run fast).
func soakIters(def int) int {
	if s := os.Getenv("AGGCACHE_SOAK_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// shardSoakEnv is one attempt's cluster: a 4-shard ERP with deltas on every
// shard and a 2-worker scatter-gather plane.
type shardSoakEnv struct {
	serp *workload.ShardedERP
	s    *shard.Sharded
	cfg  workload.ERPConfig
}

func newShardSoakEnv(t *testing.T, seed int64) *shardSoakEnv {
	t.Helper()
	cfg := testCfg(seed)
	cfg.Headers = 1200
	serp, err := workload.BuildShardedERP(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := shard.New(serp.Cluster, shard.Config{
		Manager: core.Config{Workers: 2},
		Metrics: obs.NewRegistry(),
	})
	e := &shardSoakEnv{serp: serp, s: s, cfg: cfg}
	// Deltas on every shard: monotonic inserts feed the last shard, and
	// reprices of bulk-loaded items feed all the others.
	if err := serp.InsertBusinessObjects(30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		e.reprice(int64(1+i*37%int(int64(cfg.Headers)*int64(cfg.ItemsPerHeader))), float64(1+i%500))
	}
	return e
}

// reprice updates one bulk-loaded item's price on its owning shard under
// that shard's writer lock.
func (e *shardSoakEnv) reprice(itemID int64, price float64) {
	hid := (itemID-1)/int64(e.cfg.ItemsPerHeader) + 1
	sh := e.serp.Cluster.Shard(e.serp.Cluster.ShardFor(hid))
	sh.DB.Lock()
	defer sh.DB.Unlock()
	tx := sh.DB.Txns().Begin()
	if err := sh.DB.MustTable(workload.TItem).Update(tx, itemID,
		map[string]column.Value{"Price": column.FloatV(price)}); err != nil {
		tx.Abort()
		return // item deleted/not on this shard: harmless in a soak
	}
	tx.Commit()
}

// insert adds one business object (lands on the last shard) under its
// writer lock.
func (e *shardSoakEnv) insert() error {
	hid := e.serp.NextHeaderID()
	sh := e.serp.Cluster.Shard(e.serp.Cluster.ShardFor(hid))
	sh.DB.Lock()
	defer sh.DB.Unlock()
	return e.serp.InsertBusinessObject(e.cfg.ItemsPerHeader)
}

func p99(lat []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// TestShardConcurrentMergeSoak streams cross-shard cached queries while
// every shard runs online merges concurrently (no global pause), with a
// background writer mutating all shards; run with -race. Two invariants:
//
//  1. Correctness: readers never error and per-shard watermarks never move
//     backwards across the soak.
//  2. Tail latency: the reader p99 of every time slice during concurrent
//     merges stays within 2x of a control phase running identical CPU and
//     allocation bursts without the merge machinery — mirroring the
//     BenchmarkMergeInterference methodology at the cluster level. The
//     ratio check retries to ride out scheduler noise; a persistent
//     failure writes a diagnostics bundle for CI to upload.
func TestShardConcurrentMergeSoak(t *testing.T) {
	// The 2x tail bound is the production contract, enforced by the
	// uninstrumented run. Under -race every synchronization operation is
	// serialized through the detector, which multiplies time spent inside
	// the merge's brief critical sections far beyond its real cost; the
	// race run keeps a loose bound that still flags pathological stalls
	// (a global pause would block readers for whole merge rounds, an
	// order of magnitude past it) while its real job is the correctness
	// invariants: no reader errors, no watermark regression, no races.
	maxRatio := 2.0
	if raceEnabled {
		maxRatio = 8.0
	}
	const attempts = 3
	var worst float64
	var env *shardSoakEnv
	for a := 1; a <= attempts; a++ {
		e := newShardSoakEnv(t, int64(100+a))
		ratio := runShardSoakAttempt(t, e)
		env = e
		if ratio <= maxRatio {
			return
		}
		worst = ratio
		t.Logf("attempt %d/%d: worst slice p99 ratio %.2f > %.1f, retrying", a, attempts, ratio, maxRatio)
	}
	writeShardSoakBundle(t, env)
	t.Fatalf("per-slice p99 during concurrent shard merges stayed %.2fx control (limit %.1fx) across %d attempts",
		worst, maxRatio, attempts)
}

// runShardSoakAttempt runs one control phase and one merge phase and
// returns the worst per-slice p99 ratio (merge slice vs whole control).
func runShardSoakAttempt(t *testing.T, e *shardSoakEnv) float64 {
	t.Helper()
	q := e.serp.YearRangeQuery(e.cfg.BaseYear, e.cfg.BaseYear+e.cfg.Years-1)
	if _, _, err := e.s.Execute(q, core.CachedFullPruning); err != nil {
		t.Fatal(err)
	}
	wmBefore := e.serp.Cluster.Watermarks()

	samples := soakIters(12) * 100
	const slices = 4

	sample := func(n int) []time.Duration {
		lat := make([]time.Duration, n)
		for i := range lat {
			start := time.Now()
			if _, _, err := e.s.Execute(q, core.CachedFullPruning); err != nil {
				t.Fatalf("reader during soak: %v", err)
			}
			lat[i] = time.Since(start)
		}
		return lat
	}

	// Calibrate: one concurrent all-shard merge round's wall clock sets the
	// control burst; the cadence leaves two bursts of quiet per burst.
	if err := e.insert(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.serp.Cluster.MergeTablesOnlineConcurrent(false, workload.THeader, workload.TItem); err != nil {
		t.Fatal(err)
	}
	burst := time.Since(start)
	gap := 2 * burst
	if gap < 5*time.Millisecond {
		gap = 5 * time.Millisecond
	}

	// Background writer, running through both phases so write pressure is
	// part of the baseline.
	stopWriter := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			if err := e.insert(); err != nil {
				t.Error(err)
				return
			}
			e.reprice(int64(1+i%400), float64(1+i%300))
			i++
			time.Sleep(time.Millisecond)
		}
	}()

	// Control phase: matched CPU + allocation bursts, no merge locks.
	stopCtl := make(chan struct{})
	doneCtl := make(chan struct{})
	go func() {
		defer close(doneCtl)
		var hold [][]byte
		for {
			select {
			case <-stopCtl:
				return
			default:
			}
			hold = hold[:0]
			for spin := time.Now(); time.Since(spin) < burst; {
				hold = append(hold, make([]byte, 1<<14))
				if len(hold) > 256 {
					hold = hold[:0]
				}
			}
			time.Sleep(gap)
		}
	}()
	ctl := sample(samples)
	close(stopCtl)
	<-doneCtl

	// Merge phase: concurrent per-shard online merges on the same cadence.
	stopMerge := make(chan struct{})
	mergeErr := make(chan error, 1)
	var rounds int64
	go func() {
		for {
			select {
			case <-stopMerge:
				mergeErr <- nil
				return
			default:
			}
			if err := e.serp.Cluster.MergeTablesOnlineConcurrent(false, workload.THeader, workload.TItem); err != nil {
				mergeErr <- err
				return
			}
			rounds++
			time.Sleep(gap)
		}
	}()
	during := sample(samples)
	close(stopMerge)
	if err := <-mergeErr; err != nil {
		t.Fatalf("concurrent shard merge: %v", err)
	}
	close(stopWriter)
	wg.Wait()

	if rounds == 0 {
		t.Fatal("merge phase completed zero merge rounds; soak tested nothing")
	}
	wmAfter := e.serp.Cluster.Watermarks()
	for i := range wmAfter {
		if wmAfter[i] < wmBefore[i] {
			t.Fatalf("shard %d watermark moved backwards: %d -> %d", i, wmBefore[i], wmAfter[i])
		}
	}

	ctlP99 := p99(ctl)
	if ctlP99 <= 0 {
		ctlP99 = time.Microsecond
	}
	worst := 0.0
	per := len(during) / slices
	for sl := 0; sl < slices; sl++ {
		s99 := p99(during[sl*per : (sl+1)*per])
		if r := float64(s99) / float64(ctlP99); r > worst {
			worst = r
		}
	}
	t.Logf("control p99 %v, worst merge-slice p99 ratio %.2f over %d rounds", ctlP99, worst, rounds)
	return worst
}

// writeShardSoakBundle persists a diagnostics bundle (metrics plus the
// cluster layout snapshot) for the CI artifact upload on soak failure.
func writeShardSoakBundle(t *testing.T, e *shardSoakEnv) {
	t.Helper()
	dir := os.Getenv("AGGCACHE_SOAK_BUNDLE_DIR")
	if dir == "" || e == nil {
		return
	}
	b := verify.Collect(verify.BundleSources{
		Meta:     map[string]string{"binary": "go test", "test": "TestShardConcurrentMergeSoak"},
		Registry: e.s.Metrics(),
		Cache:    func() any { return e.s.Snapshot() },
	})
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		t.Logf("bundle marshal: %v", err)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("bundle dir: %v", err)
		return
	}
	path := filepath.Join(dir, "BUNDLE_shard-soak.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("bundle write: %v", err)
		return
	}
	t.Logf("diagnostics bundle written to %s", path)
}
