//go:build !race

package shard_test

const raceEnabled = false
