package shard

import (
	"aggcache/internal/txn"
)

// TableSnapshot is one table's row layout on one shard.
type TableSnapshot struct {
	Name       string `json:"name"`
	MainRows   int    `json:"main_rows"`
	DeltaRows  int    `json:"delta_rows"`
	Partitions int    `json:"partitions"`
}

// ShardSnapshot is one shard's slice of the /debug/shards payload.
type ShardSnapshot struct {
	Index int `json:"index"`
	// RangeLo/RangeHi bound the routing keys the shard owns (open ends
	// reported at the int64 extremes).
	RangeLo   int64           `json:"range_lo"`
	RangeHi   int64           `json:"range_hi"`
	Watermark txn.TID         `json:"watermark"`
	Tables    []TableSnapshot `json:"tables"`
	// CacheEntries/CacheBytes describe the shard's private aggregate-cache
	// namespace.
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   uint64 `json:"cache_bytes"`
}

// Snapshot is the /debug/shards payload (and the \shards shell dump): the
// cluster layout plus the scatter-gather counters.
type Snapshot struct {
	Shards     int     `json:"shards"`
	Boundaries []int64 `json:"boundaries"`
	// Dispatch counters from the shard.* namespace.
	Queries     int64           `json:"queries"`
	Scattered   int64           `json:"scattered"`
	Pruned      int64           `json:"pruned"`
	PrunedEmpty int64           `json:"pruned_empty"`
	PrunedMD    int64           `json:"pruned_md"`
	PrunedScan  int64           `json:"pruned_scan"`
	DeltaSingle int64           `json:"delta_single"`
	DeltaShards int64           `json:"delta_shards"`
	PerShard    []ShardSnapshot `json:"per_shard"`
}

// Snapshot renders the cluster layout and dispatch counters.
func (s *Sharded) Snapshot() Snapshot {
	snap := Snapshot{
		Shards:      s.NumShards(),
		Boundaries:  s.cluster.Router().Boundaries(),
		Queries:     s.obs.queries.Value(),
		Scattered:   s.obs.scattered.Value(),
		Pruned:      s.obs.pruned.Value(),
		PrunedEmpty: s.obs.prunedEmpty.Value(),
		PrunedMD:    s.obs.prunedMD.Value(),
		PrunedScan:  s.obs.prunedScan.Value(),
		DeltaSingle: s.obs.deltaSingle.Value(),
		DeltaShards: s.obs.deltaShards.Value(),
	}
	for i, sh := range s.cluster.Shards() {
		sh.DB.RLock()
		ss := ShardSnapshot{
			Index:        i,
			Watermark:    sh.DB.Txns().Watermark(),
			CacheEntries: s.mgrs[i].Len(),
			CacheBytes:   s.mgrs[i].SizeBytes(),
		}
		ss.RangeLo, ss.RangeHi = s.cluster.Router().Range(i)
		for _, name := range sh.DB.TableNames() {
			t := sh.DB.MustTable(name)
			ts := TableSnapshot{Name: name, Partitions: len(t.Partitions())}
			for _, p := range t.Partitions() {
				ts.MainRows += p.Main.Rows()
				ts.DeltaRows += p.Delta.Rows()
				if p.Delta2 != nil {
					ts.DeltaRows += p.Delta2.Rows()
				}
			}
			ss.Tables = append(ss.Tables, ts)
		}
		sh.DB.RUnlock()
		snap.PerShard = append(snap.PerShard, ss)
	}
	return snap
}
