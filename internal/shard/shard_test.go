package shard_test

import (
	"fmt"
	"testing"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/query"
	"aggcache/internal/shard"
	"aggcache/internal/workload"
)

func testCfg(seed int64) workload.ERPConfig {
	return workload.ERPConfig{
		Headers:        400,
		ItemsPerHeader: 4,
		Categories:     12,
		Languages:      []string{"ENG", "GER"},
		Years:          4,
		BaseYear:       2012,
		Seed:           seed,
	}
}

func buildSharded(t *testing.T, cfg workload.ERPConfig, shards, workers int) (*workload.ShardedERP, *shard.Sharded) {
	t.Helper()
	serp, err := workload.BuildShardedERP(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s := shard.New(serp.Cluster, shard.Config{
		Manager: core.Config{Workers: workers},
		Metrics: obs.NewRegistry(),
	})
	return serp, s
}

func render(a *query.AggTable) string { return fmt.Sprintf("%+v", a.Rows()) }

// queries returns the four ERP shapes.
func queries(e *workload.ERP) []*query.Query {
	return []*query.Query{
		e.ProfitQuery(e.Cfg.BaseYear+1, e.Cfg.Languages[0]),
		e.YearRangeQuery(e.Cfg.BaseYear, e.Cfg.BaseYear+2),
		e.HeaderCountQuery(),
		e.ItemRevenueQuery(),
	}
}

// TestShardTransparency is the unit-level transparency check: every query
// shape, at every strategy and shard count, returns rows byte-identical to
// the unsharded uncached oracle — before and after growing and merging the
// deltas.
func TestShardTransparency(t *testing.T) {
	t.Parallel()
	cfg := testCfg(42)
	oracle, err := workload.BuildERP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := core.NewManager(oracle.DB, oracle.Reg, core.Config{Workers: 1, Metrics: obs.NewRegistry()})

	type view struct {
		erp *workload.ShardedERP
		s   *shard.Sharded
	}
	var views []view
	for _, n := range []int{1, 2, 8} {
		serp, s := buildSharded(t, cfg, n, 2)
		views = append(views, view{serp, s})
	}

	checkAll := func(stage string) {
		t.Helper()
		for qi, q := range queries(oracle) {
			res, _, err := om.Execute(q, core.Uncached)
			if err != nil {
				t.Fatal(err)
			}
			want := render(res)
			for _, v := range views {
				for _, strat := range core.Strategies() {
					got, _, err := v.s.Execute(q, strat)
					if err != nil {
						t.Fatalf("%s shards=%d q%d %v: %v", stage, v.s.NumShards(), qi, strat, err)
					}
					if g := render(got); g != want {
						t.Fatalf("%s shards=%d q%d %v diverged\n got: %s\nwant: %s",
							stage, v.s.NumShards(), qi, strat, g, want)
					}
				}
			}
		}
	}

	checkAll("bulk-loaded")

	if err := oracle.InsertBusinessObjects(30); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if err := v.erp.InsertBusinessObjects(30); err != nil {
			t.Fatal(err)
		}
	}
	checkAll("delta-grown")

	if err := oracle.DB.MergeTablesOnline(false, workload.THeader, workload.TItem); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if err := v.erp.Cluster.MergeTablesOnlineConcurrent(false, workload.THeader, workload.TItem); err != nil {
			t.Fatal(err)
		}
	}
	checkAll("merged")
}

// TestShardWorkerFoldIdentity pins the shard-order fold invariant directly:
// the same cluster observed through 1-worker and 4-worker manager planes
// returns byte-identical rows and execution statistics.
func TestShardWorkerFoldIdentity(t *testing.T) {
	t.Parallel()
	cfg := testCfg(7)
	serp, err := workload.BuildShardedERP(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *shard.Sharded {
		return shard.New(serp.Cluster, shard.Config{
			Manager: core.Config{Workers: workers},
			Metrics: obs.NewRegistry(),
		})
	}
	s1, s4 := mk(1), mk(4)
	if err := serp.InsertBusinessObjects(20); err != nil {
		t.Fatal(err)
	}
	for _, strat := range core.Strategies() {
		for _, q := range queries(&workload.ERP{Cfg: cfg}) {
			r1, i1, err := s1.Execute(q, strat)
			if err != nil {
				t.Fatal(err)
			}
			r4, i4, err := s4.Execute(q, strat)
			if err != nil {
				t.Fatal(err)
			}
			if render(r1) != render(r4) {
				t.Fatalf("%v: rows diverged across worker counts", strat)
			}
			if i1.Stats != i4.Stats {
				t.Fatalf("%v: stats diverged across worker counts:\n w1: %+v\n w4: %+v", strat, i1.Stats, i4.Stats)
			}
		}
	}
}

// TestShardScanPruning checks whole-shard dynamic pruning: fiscal years
// correlate with HeaderID (the routing key), so a one-year filter must
// prune shards whose year ranges miss it — and still match the oracle.
func TestShardScanPruning(t *testing.T) {
	t.Parallel()
	cfg := testCfg(3)
	oracle, err := workload.BuildERP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := core.NewManager(oracle.DB, oracle.Reg, core.Config{Workers: 1, Metrics: obs.NewRegistry()})
	_, s := buildSharded(t, cfg, 4, 2)

	q := oracle.ProfitQuery(cfg.BaseYear, cfg.Languages[0]) // first year only
	res, info, err := s.Execute(q, core.Uncached)
	if err != nil {
		t.Fatal(err)
	}
	if info.PrunedScan == 0 {
		t.Fatalf("expected scan-pruned shards for a single-year filter, got info %+v", info)
	}
	oracleRes, _, err := om.Execute(q, core.Uncached)
	if err != nil {
		t.Fatal(err)
	}
	if render(res) != render(oracleRes) {
		t.Fatalf("pruned execution diverged from oracle")
	}
	// The pruned shards' managers never saw the query.
	if info.Scattered+info.Pruned != s.NumShards() {
		t.Fatalf("scattered %d + pruned %d != shards %d", info.Scattered, info.Pruned, s.NumShards())
	}
}

// TestShardEmptyPruning checks that shards left empty by an uneven router
// are pruned without dispatch.
func TestShardEmptyPruning(t *testing.T) {
	t.Parallel()
	cfg := testCfg(5)
	// 6 headers over 8 shards: the key domain is narrower than the shard
	// count, so the high shards hold no Header or Item rows at all.
	cfg.Headers = 6
	_, s := buildSharded(t, cfg, 8, 1)
	q := erpItemRevenue()
	_, info, err := s.Execute(q, core.Uncached)
	if err != nil {
		t.Fatal(err)
	}
	if info.PrunedEmpty == 0 {
		t.Fatalf("expected empty-pruned shards with 6 headers over 8 shards, got %+v", info)
	}
}

func erpItemRevenue() *query.Query {
	e := &workload.ERP{}
	return e.ItemRevenueQuery()
}

// TestShardDeltaLocality checks the headline object-aware property: a
// monotonic insert stream keeps all delta rows on the last shard, so
// executions report at most one delta-bearing shard.
func TestShardDeltaLocality(t *testing.T) {
	t.Parallel()
	cfg := testCfg(9)
	serp, s := buildSharded(t, cfg, 4, 2)
	if err := serp.InsertBusinessObjects(50); err != nil {
		t.Fatal(err)
	}
	last := serp.Cluster.NumShards() - 1
	for i := 0; i < serp.Cluster.NumShards(); i++ {
		rows := serp.Cluster.DeltaRows(i, workload.TItem)
		if i == last && rows == 0 {
			t.Fatalf("last shard has no delta rows after monotonic inserts")
		}
		if i != last && rows != 0 {
			t.Fatalf("shard %d has %d delta rows; monotonic inserts must stay on shard %d", i, rows, last)
		}
	}
	_, info, err := s.Execute(erpItemRevenue(), core.CachedFullPruning)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SingleDeltaShard || info.DeltaShards != 1 {
		t.Fatalf("expected single delta shard, got %+v", info)
	}
}

// TestShardReshardAfterAge ages the hot/cold boundary inside one shard
// (online, a physical reorganization) and checks results still match a
// fresh unsharded oracle: per-shard aging is invisible to the scatter-
// gather layer.
func TestShardReshardAfterAge(t *testing.T) {
	t.Parallel()
	cfg := testCfg(13)
	cfg.ColdShare = 0.5
	oracle, err := workload.BuildERP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := core.NewManager(oracle.DB, oracle.Reg, core.Config{Workers: 1, Metrics: obs.NewRegistry()})
	serp, s := buildSharded(t, cfg, 2, 2)

	// Age shard 0: move its hot/cold boundary up. Deltas are empty right
	// after bulk load, which AgeOnline requires.
	sh := serp.Cluster.Shard(0)
	for _, name := range []string{workload.THeader, workload.TItem} {
		cold := sh.DB.MustTable(name).Partitions()[0]
		wm := int64(sh.DB.Txns().Watermark())
		if wm <= cold.Hi {
			t.Skipf("watermark %d below cold boundary %d", wm, cold.Hi)
		}
		split := cold.Hi + (wm-cold.Hi)/2
		if split <= cold.Hi {
			split = cold.Hi + 1
		}
		if err := sh.DB.AgeOnline(name, split); err != nil {
			t.Fatal(err)
		}
	}

	for qi, q := range queries(oracle) {
		want, _, err := om.Execute(q, core.Uncached)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range core.Strategies() {
			got, _, err := s.Execute(q, strat)
			if err != nil {
				t.Fatalf("q%d %v: %v", qi, strat, err)
			}
			if render(got) != render(want) {
				t.Fatalf("q%d %v diverged after per-shard aging", qi, strat)
			}
		}
	}
}

// TestShardGovernors checks concurrent per-shard governor ticks: growing
// only the last shard's delta and ticking all governors merges that shard
// alone, leaving the others' merge counters untouched.
func TestShardGovernors(t *testing.T) {
	t.Parallel()
	cfg := testCfg(17)
	serp, s := buildSharded(t, cfg, 4, 1)
	s.Govern(core.GovernorConfig{
		Tables:        []string{workload.THeader, workload.TItem},
		DeltaRowsHigh: 20,
		Cooldown:      time.Millisecond,
		Rotate:        time.Hour,
	})
	if err := serp.InsertBusinessObjects(20); err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var merged int
	for tick := 0; tick < 5; tick++ {
		clock = clock.Add(time.Second)
		actions, err := s.TickAll(clock)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range actions {
			if a == core.GovMerge {
				merged++
			}
		}
	}
	if merged == 0 {
		t.Fatal("no governor merged despite delta pressure on the last shard")
	}
	govs := s.Governors()
	last := len(govs) - 1
	for i, g := range govs {
		snap := g.Snapshot()
		if i == last && snap.Merges == 0 {
			t.Fatalf("last shard's governor never merged: %+v", snap)
		}
		if i != last && snap.Merges != 0 {
			t.Fatalf("shard %d's governor merged with an empty delta: %+v", i, snap)
		}
	}
	if rows := serp.Cluster.DeltaRows(last, workload.TItem); rows != 0 {
		t.Fatalf("last shard still holds %d delta rows after governed merge", rows)
	}
}

// TestShardSnapshot sanity-checks the /debug/shards payload: layout,
// per-shard ranges, and row totals against the configuration.
func TestShardSnapshot(t *testing.T) {
	t.Parallel()
	cfg := testCfg(21)
	_, s := buildSharded(t, cfg, 4, 1)
	if _, _, err := s.Execute(erpItemRevenue(), core.Uncached); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Shards != 4 || len(snap.PerShard) != 4 {
		t.Fatalf("snapshot shards = %d / %d, want 4", snap.Shards, len(snap.PerShard))
	}
	if snap.Queries != 1 {
		t.Fatalf("snapshot queries = %d, want 1", snap.Queries)
	}
	var headers int
	for i, ps := range snap.PerShard {
		if ps.Index != i {
			t.Fatalf("per-shard index %d at position %d", ps.Index, i)
		}
		for _, ts := range ps.Tables {
			if ts.Name == workload.THeader {
				headers += ts.MainRows + ts.DeltaRows
			}
		}
	}
	if headers != cfg.Headers {
		t.Fatalf("snapshot header rows = %d, want %d", headers, cfg.Headers)
	}
}
