package shard

import (
	"math"
	"sort"
	"testing"
)

// TestRouterBoundaryEdges pins the half-open range semantics at the exact
// boundary keys: a key equal to a boundary belongs to the shard above it.
func TestRouterBoundaryEdges(t *testing.T) {
	t.Parallel()
	r, err := NewRouter([]int64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Shards(); got != 3 {
		t.Fatalf("Shards() = %d, want 3", got)
	}
	cases := []struct {
		key  int64
		want int
	}{
		{math.MinInt64, 0}, {0, 0}, {9, 0},
		{10, 1}, {15, 1}, {19, 1},
		{20, 2}, {21, 2}, {math.MaxInt64, 2},
	}
	for _, c := range cases {
		if got := r.Route(c.key); got != c.want {
			t.Errorf("Route(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	if lo, hi := r.Range(0); lo != math.MinInt64 || hi != 10 {
		t.Errorf("Range(0) = [%d, %d), want [MinInt64, 10)", lo, hi)
	}
	if lo, hi := r.Range(1); lo != 10 || hi != 20 {
		t.Errorf("Range(1) = [%d, %d), want [10, 20)", lo, hi)
	}
	if lo, hi := r.Range(2); lo != 20 || hi != math.MaxInt64 {
		t.Errorf("Range(2) = [%d, %d), want [20, MaxInt64)", lo, hi)
	}
}

// TestRouterSingleShard checks the degenerate empty boundary list: one
// shard owning everything.
func TestRouterSingleShard(t *testing.T) {
	t.Parallel()
	r, err := NewRouter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", r.Shards())
	}
	for _, key := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		if got := r.Route(key); got != 0 {
			t.Errorf("Route(%d) = %d, want 0", key, got)
		}
	}
}

// TestNewRouterRejectsNonAscending rejects equal and descending boundaries.
func TestNewRouterRejectsNonAscending(t *testing.T) {
	t.Parallel()
	for _, bs := range [][]int64{{5, 5}, {10, 5}, {1, 2, 2}} {
		if _, err := NewRouter(bs); err == nil {
			t.Errorf("NewRouter(%v) accepted non-ascending boundaries", bs)
		}
	}
}

// TestEvenBoundaries checks the bulk-load layout helper: the right count,
// strictly ascending, and degenerate ranges still produce a valid router.
func TestEvenBoundaries(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		lo, hi int64
		shards int
	}{
		{1, 100, 4}, {1, 7, 8}, {1, 1, 3}, {0, 1 << 40, 16}, {5, 5, 2},
	} {
		bs := EvenBoundaries(c.lo, c.hi, c.shards)
		if len(bs) != c.shards-1 {
			t.Fatalf("EvenBoundaries(%d,%d,%d): %d boundaries, want %d",
				c.lo, c.hi, c.shards, len(bs), c.shards-1)
		}
		if !sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i] < bs[j] }) {
			t.Fatalf("EvenBoundaries(%d,%d,%d) not sorted: %v", c.lo, c.hi, c.shards, bs)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] == bs[i-1] {
				t.Fatalf("EvenBoundaries(%d,%d,%d) has duplicate %d", c.lo, c.hi, c.shards, bs[i])
			}
		}
		if _, err := NewRouter(bs); err != nil {
			t.Fatalf("EvenBoundaries(%d,%d,%d) rejected by NewRouter: %v", c.lo, c.hi, c.shards, err)
		}
	}
	if bs := EvenBoundaries(1, 100, 1); bs != nil {
		t.Errorf("EvenBoundaries(..., 1 shard) = %v, want nil", bs)
	}
	if bs := EvenBoundaries(100, 1, 4); bs != nil {
		t.Errorf("EvenBoundaries(hi<lo) = %v, want nil", bs)
	}
}

// TestRouterKeysLandInOwnRange is the range/route consistency property over
// a spread of keys: every key routes to the shard whose Range contains it.
func TestRouterKeysLandInOwnRange(t *testing.T) {
	t.Parallel()
	r, err := NewRouter(EvenBoundaries(1, 10000, 8))
	if err != nil {
		t.Fatal(err)
	}
	for key := int64(-100); key <= 10200; key += 7 {
		i := r.Route(key)
		lo, hi := r.Range(i)
		if key < lo || (key >= hi && hi != math.MaxInt64) {
			t.Fatalf("Route(%d) = %d but Range(%d) = [%d, %d)", key, i, i, lo, hi)
		}
	}
}

// FuzzRoute fuzzes the router with derived boundary sets: for any strictly
// ascending boundaries and any key, the routed shard's range must contain
// the key, and adjacent keys across a boundary must land on adjacent
// shards.
func FuzzRoute(f *testing.F) {
	f.Add(int64(10), int64(20), int64(30), int64(15))
	f.Add(int64(0), int64(1), int64(2), int64(1))
	f.Add(int64(-5), int64(0), int64(5), int64(math.MinInt64))
	f.Add(int64(1), int64(1), int64(1), int64(math.MaxInt64))
	f.Add(int64(100), int64(50), int64(-3), int64(50))
	f.Fuzz(func(t *testing.T, a, b, c, key int64) {
		raw := []int64{a, b, c}
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		var bs []int64
		for _, v := range raw {
			if len(bs) == 0 || v > bs[len(bs)-1] {
				bs = append(bs, v)
			}
		}
		r, err := NewRouter(bs)
		if err != nil {
			t.Fatalf("NewRouter(%v) rejected deduplicated sorted boundaries: %v", bs, err)
		}
		i := r.Route(key)
		if i < 0 || i >= r.Shards() {
			t.Fatalf("Route(%d) = %d out of [0, %d)", key, i, r.Shards())
		}
		lo, hi := r.Range(i)
		if key < lo || (key >= hi && hi != math.MaxInt64) {
			t.Fatalf("Route(%d) = %d but Range(%d) = [%d, %d)", key, i, i, lo, hi)
		}
		// Crossing a boundary from below moves exactly one shard up.
		for bi, bv := range bs {
			if bv == math.MinInt64 {
				continue
			}
			below, at := r.Route(bv-1), r.Route(bv)
			if at != bi+1 || below > at || at-below > 1 {
				t.Fatalf("boundary %d: Route(%d)=%d Route(%d)=%d", bv, bv-1, below, bv, at)
			}
		}
	})
}
