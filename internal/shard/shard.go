// Package shard adds horizontal range sharding on top of the main-delta
// engine: a cluster of N independent databases, each owning its own
// main/delta stores, transaction watermark, and aggregate-cache namespace,
// with a scatter-gather executor that fans a query across the shards and
// folds the per-shard aggregation tables in shard order.
//
// Because every aggregate the engine serves is additively mergeable
// (internal/query/agg.go), shard count is observationally invisible: the
// folded result of any shard count is byte-identical to the unsharded
// execution of the same query. The matching-dependency tid-range metadata
// that prunes subjoin combinations inside one database (paper Sec. 5)
// applies logically across shards too: whole shards are pruned before
// dispatch when their table-level tid ranges or filter-column ranges prove
// the shard's contribution empty, so a tid-local insert stream collapses
// most delta-side work to a single shard.
package shard

import (
	"fmt"
	"sort"

	"aggcache/internal/md"
	"aggcache/internal/table"
	"aggcache/internal/txn"
)

// Router maps a routing-column value (a primary key or a tid) to a shard
// index by range partitioning. With boundaries b[0] < b[1] < ... < b[k-1],
// shard 0 owns (-inf, b[0]), shard i owns [b[i-1], b[i]), and the last
// shard owns [b[k-1], +inf) — so a monotonically increasing key stream
// (new object ids, new tids) always lands in the last shard.
type Router struct {
	boundaries []int64
}

// NewRouter validates the boundary list (strictly ascending) and returns a
// router over len(boundaries)+1 shards. An empty list is the 1-shard
// router: every key routes to shard 0.
func NewRouter(boundaries []int64) (*Router, error) {
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			return nil, fmt.Errorf("shard: boundaries not strictly ascending at %d: %d <= %d",
				i, boundaries[i], boundaries[i-1])
		}
	}
	return &Router{boundaries: append([]int64(nil), boundaries...)}, nil
}

// EvenBoundaries splits [lo, hi] into the given number of equal-width
// ranges and returns the shards-1 interior boundaries — the bulk-load
// layout where existing keys spread evenly and keys above hi (future
// inserts) route to the last shard.
func EvenBoundaries(lo, hi int64, shards int) []int64 {
	if shards <= 1 || hi < lo {
		return nil
	}
	width := (hi - lo + 1) / int64(shards)
	if width < 1 {
		width = 1
	}
	var bs []int64
	for i := 1; i < shards; i++ {
		b := lo + int64(i)*width
		if len(bs) > 0 && b <= bs[len(bs)-1] {
			b = bs[len(bs)-1] + 1
		}
		bs = append(bs, b)
	}
	return bs
}

// Shards reports the shard count the router fans across.
func (r *Router) Shards() int { return len(r.boundaries) + 1 }

// Boundaries returns a copy of the interior range boundaries.
func (r *Router) Boundaries() []int64 { return append([]int64(nil), r.boundaries...) }

// Route maps a key to its owning shard index.
func (r *Router) Route(key int64) int {
	// sort.Search finds the first boundary strictly above key; with shard i
	// owning [b[i-1], b[i]) that index IS the shard.
	return sort.Search(len(r.boundaries), func(i int) bool { return key < r.boundaries[i] })
}

// Range returns the key range [lo, hi) shard i owns; the first and last
// shards are open-ended (lo/hi reported as math.MinInt64/MaxInt64).
func (r *Router) Range(i int) (lo, hi int64) {
	lo, hi = int64(-1)<<63, int64(1<<63-1)
	if i > 0 {
		lo = r.boundaries[i-1]
	}
	if i < len(r.boundaries) {
		hi = r.boundaries[i]
	}
	return lo, hi
}

// Shard is one member of a cluster: an independent database with its own
// transaction watermark plus the matching-dependency registry bound to it.
type Shard struct {
	Index int
	DB    *table.DB
	Reg   *md.Registry
}

// Cluster is the data plane of a sharded deployment: the router plus the
// per-shard databases. Manager planes (Sharded) layer on top; several may
// share one cluster, exactly as several core.Managers may observe one
// table.DB.
type Cluster struct {
	router *Router
	shards []*Shard
}

// NewCluster builds the per-shard databases through the builder callback
// (called once per shard index, in order) and assembles the cluster.
func NewCluster(router *Router, build func(shard int) (*table.DB, *md.Registry, error)) (*Cluster, error) {
	if router == nil {
		return nil, fmt.Errorf("shard: nil router")
	}
	c := &Cluster{router: router}
	for i := 0; i < router.Shards(); i++ {
		db, reg, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		c.shards = append(c.shards, &Shard{Index: i, DB: db, Reg: reg})
	}
	return c, nil
}

// Router returns the cluster's routing function.
func (c *Cluster) Router() *Router { return c.router }

// NumShards reports the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns one shard by index.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Shards lists the shards in index order.
func (c *Cluster) Shards() []*Shard { return append([]*Shard(nil), c.shards...) }

// ShardFor routes a key to its owning shard index.
func (c *Cluster) ShardFor(key int64) int { return c.router.Route(key) }

// FindPK locates the shard holding a live row of the named table by
// primary key, probing shards in index order — the lookup path for writes
// keyed by a column other than the routing key (e.g. repricing an item by
// item id when items are co-located with their header).
func (c *Cluster) FindPK(tableName string, pk int64) (int, bool) {
	for i, sh := range c.shards {
		if _, ok := sh.DB.MustTable(tableName).LookupPK(pk); ok {
			return i, true
		}
	}
	return 0, false
}

// MergeTables runs the classic synchronized offline merge of the named
// tables on every shard, in shard order — the deterministic reorganization
// used by the differential harness.
func (c *Cluster) MergeTables(keepInvalidated bool, tableNames ...string) error {
	for _, sh := range c.shards {
		if err := sh.DB.MergeTables(keepInvalidated, tableNames...); err != nil {
			return fmt.Errorf("shard %d: %w", sh.Index, err)
		}
	}
	return nil
}

// MergeTablesOnline runs the non-blocking online merge of the named tables
// on every shard, in shard order. Queries keep scattering while each
// shard merges; only that shard's swap critical section excludes them.
func (c *Cluster) MergeTablesOnline(keepInvalidated bool, tableNames ...string) error {
	for _, sh := range c.shards {
		if err := sh.DB.MergeTablesOnline(keepInvalidated, tableNames...); err != nil {
			return fmt.Errorf("shard %d: %w", sh.Index, err)
		}
	}
	return nil
}

// MergeTablesOnlineConcurrent fans the online merges across the shards
// concurrently — one goroutine per shard, no cross-shard coordination, no
// global pause. Shards are independent databases, so the merges share no
// locks; the first error (if any) is reported.
func (c *Cluster) MergeTablesOnlineConcurrent(keepInvalidated bool, tableNames ...string) error {
	errs := make([]error, len(c.shards))
	done := make(chan int, len(c.shards))
	for i, sh := range c.shards {
		go func(i int, sh *Shard) {
			errs[i] = sh.DB.MergeTablesOnline(keepInvalidated, tableNames...)
			done <- i
		}(i, sh)
	}
	for range c.shards {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Watermarks reports each shard's commit watermark in shard order — the
// per-shard monotonicity the sharded invariant auditor checks.
func (c *Cluster) Watermarks() []txn.TID {
	wms := make([]txn.TID, len(c.shards))
	for i, sh := range c.shards {
		wms[i] = sh.DB.Txns().Watermark()
	}
	return wms
}

// DeltaRows sums the named table's delta rows on one shard (all
// partitions, including a write-coalescing delta2 if a merge is active).
func (c *Cluster) DeltaRows(shard int, tableName string) int {
	sh := c.shards[shard]
	sh.DB.RLock()
	defer sh.DB.RUnlock()
	n := 0
	for _, p := range sh.DB.MustTable(tableName).Partitions() {
		n += p.Delta.Rows()
		if p.Delta2 != nil {
			n += p.Delta2.Rows()
		}
	}
	return n
}
