package shard

import (
	"time"

	"aggcache/internal/core"
)

// Govern attaches one maintenance governor per shard from the template
// config. Each governor watches only its shard's delta growth, windowed
// compensation cost, and SLO burn, and triggers online merges of that
// shard alone — shard maintenance never pauses the others.
func (s *Sharded) Govern(cfg core.GovernorConfig) {
	s.govs = s.govs[:0]
	for _, m := range s.mgrs {
		s.govs = append(s.govs, core.NewGovernor(m, cfg))
	}
}

// Governors lists the per-shard governors (nil before Govern).
func (s *Sharded) Governors() []*core.Governor { return append([]*core.Governor(nil), s.govs...) }

// TickAll fans one deterministic governor tick per shard concurrently —
// one goroutine per shard, no cross-shard coordination. A tick that
// decides to merge runs that shard's MergeOnline while the other shards
// keep ticking and serving: there is no global pause. Actions are
// returned in shard order; the first error (if any) is reported.
func (s *Sharded) TickAll(now time.Time) ([]core.GovernorAction, error) {
	actions := make([]core.GovernorAction, len(s.govs))
	errs := make([]error, len(s.govs))
	done := make(chan struct{}, len(s.govs))
	for i, g := range s.govs {
		go func(i int, g *core.Governor) {
			actions[i], errs[i] = g.Tick(now)
			done <- struct{}{}
		}(i, g)
	}
	for range s.govs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return actions, err
		}
	}
	return actions, nil
}

// StartGovernors launches every shard governor's background loop.
func (s *Sharded) StartGovernors() {
	for _, g := range s.govs {
		g.Start()
	}
}

// StopGovernors halts the background loops.
func (s *Sharded) StopGovernors() {
	for _, g := range s.govs {
		g.Stop()
	}
}
