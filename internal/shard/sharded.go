package shard

import (
	"fmt"
	"strings"

	"aggcache/internal/core"
	"aggcache/internal/obs"
)

// Config parameterizes the manager plane of a sharded deployment.
type Config struct {
	// Manager is the per-shard cache-manager template. Workers, capacity,
	// admission threshold, and feature toggles apply to every shard's
	// manager. When Manager.Metrics is nil each shard gets a private
	// registry so per-shard counters stay a pure function of that shard's
	// traffic; when set, all shards share it.
	Manager core.Config
	// Metrics receives the scatter-gather metrics (shard.*); nil uses the
	// process-default registry.
	Metrics *obs.Registry
	// Ledgers attaches an unbounded decision ledger to every shard's
	// manager. CanonLedgers folds them in shard order — the canonical
	// decision stream the differential harness compares across worker
	// counts.
	Ledgers bool
}

// Sharded is the manager plane over a cluster: one aggregate-cache manager
// per shard (own cache entries, invalidation hooks, and metrics namespace)
// plus the scatter-gather executor. Several Sharded views with different
// worker counts may observe the same cluster, exactly as several
// core.Managers may observe one table.DB.
type Sharded struct {
	cluster *Cluster
	mgrs    []*core.Manager
	ledgers []*obs.Ledger
	obs     *shardObs
	govs    []*core.Governor
}

// shardObs holds the scatter-gather metric handles, resolved once so the
// per-query updates are pure atomics. The names extend the engine's metric
// namespace: shard.* is the cross-shard dispatch layer.
type shardObs struct {
	reg *obs.Registry

	queries     *obs.Counter // shard.queries — scatter-gather executions
	scattered   *obs.Counter // shard.scattered — per-shard dispatches issued
	pruned      *obs.Counter // shard.pruned — whole shards pruned before dispatch
	prunedEmpty *obs.Counter // shard.pruned_empty — pruned: a referenced table empty on the shard
	prunedMD    *obs.Counter // shard.pruned_md — pruned: MD tid ranges disjoint shard-wide
	prunedScan  *obs.Counter // shard.pruned_scan — pruned: filter unsatisfiable on the shard's ranges
	deltaSingle *obs.Counter // shard.delta_single — executions with <=1 delta-bearing shard
	deltaShards *obs.Counter // shard.delta_shards — delta-bearing shards summed over executions
	shards      *obs.Gauge   // shard.count — shards in the cluster
}

func newShardObs(reg *obs.Registry, shards int) *shardObs {
	if reg == nil {
		reg = obs.Default()
	}
	so := &shardObs{
		reg:         reg,
		queries:     reg.Counter("shard.queries"),
		scattered:   reg.Counter("shard.scattered"),
		pruned:      reg.Counter("shard.pruned"),
		prunedEmpty: reg.Counter("shard.pruned_empty"),
		prunedMD:    reg.Counter("shard.pruned_md"),
		prunedScan:  reg.Counter("shard.pruned_scan"),
		deltaSingle: reg.Counter("shard.delta_single"),
		deltaShards: reg.Counter("shard.delta_shards"),
		shards:      reg.Gauge("shard.count"),
	}
	so.shards.Set(int64(shards))
	return so
}

// New builds the manager plane: one core.Manager per shard from the
// template config.
func New(c *Cluster, cfg Config) *Sharded {
	s := &Sharded{cluster: c, obs: newShardObs(cfg.Metrics, c.NumShards())}
	for _, sh := range c.Shards() {
		mcfg := cfg.Manager
		if mcfg.Metrics == nil {
			mcfg.Metrics = obs.NewRegistry()
		}
		if cfg.Ledgers {
			led := obs.NewLedger(0)
			mcfg.Ledger = led
			s.ledgers = append(s.ledgers, led)
		}
		s.mgrs = append(s.mgrs, core.NewManager(sh.DB, sh.Reg, mcfg))
	}
	return s
}

// Cluster returns the underlying data plane.
func (s *Sharded) Cluster() *Cluster { return s.cluster }

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.mgrs) }

// Manager returns shard i's cache manager.
func (s *Sharded) Manager(i int) *core.Manager { return s.mgrs[i] }

// Managers lists the per-shard cache managers in shard order.
func (s *Sharded) Managers() []*core.Manager { return append([]*core.Manager(nil), s.mgrs...) }

// Metrics returns the scatter-gather registry (the shard.* namespace).
func (s *Sharded) Metrics() *obs.Registry { return s.obs.reg }

// CanonLedgers folds the per-shard canonical decision ledgers in shard
// order, separated by shard headers. Like the per-manager canonical ledger,
// the folded stream is a pure function of the operation sequence and the
// shard count — never of the worker count — which is the invariant the
// differential harness asserts.
func (s *Sharded) CanonLedgers() string {
	var b strings.Builder
	for i, led := range s.ledgers {
		fmt.Fprintf(&b, "== shard %d ==\n", i)
		b.WriteString(obs.CanonLedger(led.Snapshot()))
	}
	return b.String()
}
