// Package expr provides the scalar predicate language of the query engine:
// comparisons of a column against a constant, boolean combinators, and a
// binding step that compiles a predicate against a physical store for
// row-at-a-time evaluation. Local filter predicates — including the
// tid-range filters derived by join-predicate pushdown (paper Sec. 5.3) —
// are expressed in this language.
package expr

import (
	"fmt"
	"math/bits"
	"strings"

	"aggcache/internal/column"
)

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

func (o Op) holds(cmp int) bool {
	switch o {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// RowSource exposes the columns of a physical store; table.Store satisfies
// it.
type RowSource interface {
	Col(i int) column.Reader
}

// Bound is a predicate compiled against one store, evaluable per row.
type Bound interface {
	Eval(row int) bool
}

// WordEvaler is the optional vectorized fast path of a Bound: EvalWord
// evaluates the predicate for the 64 rows [base, base+64), restricted to the
// rows whose bit is set in mask, and returns the bits that satisfy it. Bits
// clear in mask must come back clear; bits for rows past the end of the
// store are clear in mask by construction (the caller passes the visibility
// word). Scan kernels probe for this interface and fall back to per-row Eval
// when it is absent.
type WordEvaler interface {
	EvalWord(base int, mask uint64) uint64
}

// Pred is an unbound predicate over named columns of a single table.
type Pred interface {
	fmt.Stringer
	// Columns lists the referenced column names.
	Columns() []string
	// Bind compiles the predicate against a store. colIndex resolves
	// column names; it returns a negative index for unknown names, which
	// Bind reports as an error.
	Bind(colIndex func(string) int, src RowSource) (Bound, error)
}

// True is the always-true predicate.
type True struct{}

// String implements fmt.Stringer.
func (True) String() string { return "true" }

// Columns implements Pred.
func (True) Columns() []string { return nil }

// Bind implements Pred.
func (True) Bind(func(string) int, RowSource) (Bound, error) { return boundTrue{}, nil }

type boundTrue struct{}

func (boundTrue) Eval(int) bool { return true }

func (boundTrue) EvalWord(_ int, mask uint64) uint64 { return mask }

// Cmp compares a column against a constant value.
type Cmp struct {
	Col string
	Op  Op
	Val column.Value
}

// String implements fmt.Stringer.
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Val) }

// Columns implements Pred.
func (c Cmp) Columns() []string { return []string{c.Col} }

// Bind implements Pred.
func (c Cmp) Bind(colIndex func(string) int, src RowSource) (Bound, error) {
	i := colIndex(c.Col)
	if i < 0 {
		return nil, fmt.Errorf("expr: unknown column %s", c.Col)
	}
	col := src.Col(i)
	if col.Kind() != c.Val.K {
		return nil, fmt.Errorf("expr: comparing %v column %s with %v constant", col.Kind(), c.Col, c.Val.K)
	}
	if col.Kind() == column.Int64 {
		b := &boundIntCmp{col: col, op: c.Op, val: c.Val.I}
		b.blk, _ = col.(column.Int64Blocker)
		return b, nil
	}
	return &boundCmp{col: col, op: c.Op, val: c.Val}, nil
}

type boundCmp struct {
	col column.Reader
	op  Op
	val column.Value
}

func (b *boundCmp) Eval(row int) bool { return b.op.holds(column.Compare(b.col.Value(row), b.val)) }

// boundIntCmp is the allocation-free fast path for int64 comparisons —
// the dominant case (keys, tids, years).
type boundIntCmp struct {
	col column.Reader
	blk column.Int64Blocker // non-nil when col supports block decode
	op  Op
	val int64
	buf [64]int64 // block-decode scratch for EvalWord
}

func (b *boundIntCmp) Eval(row int) bool {
	v := b.col.Int64(row)
	switch {
	case v < b.val:
		return b.op.holds(-1)
	case v > b.val:
		return b.op.holds(1)
	}
	return b.op.holds(0)
}

// EvalWord implements WordEvaler. A mostly-full mask with a block-decoding
// column takes the dense path: decode 64 contiguous values in one virtual
// call and compare in a tight loop. Sparse masks fall back to per-bit Eval so
// selective upstream filters are not paid for twice.
func (b *boundIntCmp) EvalWord(base int, mask uint64) uint64 {
	if mask == 0 {
		return 0
	}
	n := b.col.Len() - base
	if n > 64 {
		n = 64
	}
	if b.blk != nil && popcount(mask) >= n/2 {
		b.blk.Int64Block(base, b.buf[:n])
		var out uint64
		for i := 0; i < n; i++ {
			v := b.buf[i]
			var c int
			switch {
			case v < b.val:
				c = -1
			case v > b.val:
				c = 1
			}
			if b.op.holds(c) {
				out |= 1 << uint(i)
			}
		}
		return out & mask
	}
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		bit := m & -m
		if b.Eval(base + trailingZeros(bit)) {
			out |= bit
		}
	}
	return out
}

// And is the conjunction of predicates; an empty And is true.
type And struct {
	Preds []Pred
}

// NewAnd builds a conjunction, flattening the trivial cases.
func NewAnd(ps ...Pred) Pred {
	out := make([]Pred, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(True); ok || p == nil {
			continue
		}
		out = append(out, p)
	}
	switch len(out) {
	case 0:
		return True{}
	case 1:
		return out[0]
	}
	return And{Preds: out}
}

// String implements fmt.Stringer.
func (a And) String() string { return joinPreds(a.Preds, " and ") }

// Columns implements Pred.
func (a And) Columns() []string { return childColumns(a.Preds) }

// Bind implements Pred.
func (a And) Bind(colIndex func(string) int, src RowSource) (Bound, error) {
	bs, err := bindAll(a.Preds, colIndex, src)
	if err != nil {
		return nil, err
	}
	ws := make([]WordEvaler, len(bs))
	for i, b := range bs {
		w, ok := b.(WordEvaler)
		if !ok {
			return boundAnd(bs), nil
		}
		ws[i] = w
	}
	return &boundAndWords{bs: bs, ws: ws}, nil
}

type boundAnd []Bound

func (b boundAnd) Eval(row int) bool {
	for _, p := range b {
		if !p.Eval(row) {
			return false
		}
	}
	return true
}

// boundAndWords is a conjunction whose children all support word-at-a-time
// evaluation; it threads the shrinking mask through the chain so later terms
// only evaluate surviving rows.
type boundAndWords struct {
	bs []Bound
	ws []WordEvaler
}

func (b *boundAndWords) Eval(row int) bool { return boundAnd(b.bs).Eval(row) }

func (b *boundAndWords) EvalWord(base int, mask uint64) uint64 {
	for _, w := range b.ws {
		if mask == 0 {
			return 0
		}
		mask = w.EvalWord(base, mask)
	}
	return mask
}

// Or is the disjunction of predicates; an empty Or is false.
type Or struct {
	Preds []Pred
}

// String implements fmt.Stringer.
func (o Or) String() string { return joinPreds(o.Preds, " or ") }

// Columns implements Pred.
func (o Or) Columns() []string { return childColumns(o.Preds) }

// Bind implements Pred.
func (o Or) Bind(colIndex func(string) int, src RowSource) (Bound, error) {
	bs, err := bindAll(o.Preds, colIndex, src)
	if err != nil {
		return nil, err
	}
	return boundOr(bs), nil
}

type boundOr []Bound

func (b boundOr) Eval(row int) bool {
	for _, p := range b {
		if p.Eval(row) {
			return true
		}
	}
	return false
}

// Not negates a predicate.
type Not struct {
	P Pred
}

// String implements fmt.Stringer.
func (n Not) String() string { return "not (" + n.P.String() + ")" }

// Columns implements Pred.
func (n Not) Columns() []string { return n.P.Columns() }

// Bind implements Pred.
func (n Not) Bind(colIndex func(string) int, src RowSource) (Bound, error) {
	b, err := n.P.Bind(colIndex, src)
	if err != nil {
		return nil, err
	}
	return boundNot{b}, nil
}

type boundNot struct{ p Bound }

func (b boundNot) Eval(row int) bool { return !b.p.Eval(row) }

// ColStats reports the value range of a named column, typically read from
// a store's dictionary. ok is false when the range is unknown (the column
// is absent or empty).
type ColStats func(col string) (lo, hi column.Value, ok bool)

// ProvablyEmpty reports whether the predicate is false for every possible
// row given the column ranges — the dynamic partition pruning of paper
// Def. 1 / Example 1, evaluated from dictionary min/max without scanning.
// A false result means "cannot prove", never "non-empty".
func ProvablyEmpty(p Pred, stats ColStats) bool {
	switch t := p.(type) {
	case Cmp:
		lo, hi, ok := stats(t.Col)
		if !ok || lo.K != t.Val.K {
			return false
		}
		switch t.Op {
		case Eq:
			return column.Less(t.Val, lo) || column.Less(hi, t.Val)
		case Lt:
			return !column.Less(lo, t.Val)
		case Le:
			return column.Less(t.Val, lo)
		case Gt:
			return !column.Less(t.Val, hi)
		case Ge:
			return column.Less(hi, t.Val)
		}
		return false
	case And:
		for _, c := range t.Preds {
			if ProvablyEmpty(c, stats) {
				return true
			}
		}
		return false
	case Or:
		if len(t.Preds) == 0 {
			return true
		}
		for _, c := range t.Preds {
			if !ProvablyEmpty(c, stats) {
				return false
			}
		}
		return true
	}
	return false
}

func bindAll(ps []Pred, colIndex func(string) int, src RowSource) ([]Bound, error) {
	bs := make([]Bound, len(ps))
	for i, p := range ps {
		b, err := p.Bind(colIndex, src)
		if err != nil {
			return nil, err
		}
		bs[i] = b
	}
	return bs, nil
}

func childColumns(ps []Pred) []string {
	var cols []string
	seen := map[string]bool{}
	for _, p := range ps {
		for _, c := range p.Columns() {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	return cols
}

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Shape renders the predicate's structural shape: the same tree as String
// with every literal elided to "?", so predicates differing only in their
// constants render identically. This is the predicate component of the
// normalized query-shape fingerprint the per-shape profiler keys on.
func Shape(p Pred) string {
	switch v := p.(type) {
	case True:
		return "true"
	case Cmp:
		return v.Col + " " + v.Op.String() + " ?"
	case And:
		return joinShapes(v.Preds, " and ")
	case Or:
		return joinShapes(v.Preds, " or ")
	case Not:
		return "not (" + Shape(v.P) + ")"
	default:
		// Unknown predicate kinds fall back to their full rendering —
		// wrong for shape dedup but never lossy.
		return p.String()
	}
}

func joinShapes(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + Shape(p) + ")"
	}
	return strings.Join(parts, sep)
}
