package expr

import (
	"testing"

	"aggcache/internal/column"
)

func statsFor(lo, hi int64) ColStats {
	return func(col string) (column.Value, column.Value, bool) {
		if col == "x" {
			return column.IntV(lo), column.IntV(hi), true
		}
		return column.Value{}, column.Value{}, false
	}
}

func TestProvablyEmptyCmp(t *testing.T) {
	st := statsFor(10, 20)
	cases := []struct {
		p    Pred
		want bool
	}{
		{Cmp{Col: "x", Op: Eq, Val: column.IntV(5)}, true},
		{Cmp{Col: "x", Op: Eq, Val: column.IntV(25)}, true},
		{Cmp{Col: "x", Op: Eq, Val: column.IntV(10)}, false},
		{Cmp{Col: "x", Op: Eq, Val: column.IntV(20)}, false},
		{Cmp{Col: "x", Op: Lt, Val: column.IntV(10)}, true},
		{Cmp{Col: "x", Op: Lt, Val: column.IntV(11)}, false},
		{Cmp{Col: "x", Op: Le, Val: column.IntV(9)}, true},
		{Cmp{Col: "x", Op: Le, Val: column.IntV(10)}, false},
		{Cmp{Col: "x", Op: Gt, Val: column.IntV(20)}, true},
		{Cmp{Col: "x", Op: Gt, Val: column.IntV(19)}, false},
		{Cmp{Col: "x", Op: Ge, Val: column.IntV(21)}, true},
		{Cmp{Col: "x", Op: Ge, Val: column.IntV(20)}, false},
		// Ne can never be proven empty from a range.
		{Cmp{Col: "x", Op: Ne, Val: column.IntV(15)}, false},
		// Unknown column: cannot prove.
		{Cmp{Col: "y", Op: Eq, Val: column.IntV(5)}, false},
		// Kind mismatch: cannot prove.
		{Cmp{Col: "x", Op: Eq, Val: column.StrV("5")}, false},
	}
	for _, c := range cases {
		if got := ProvablyEmpty(c.p, st); got != c.want {
			t.Errorf("ProvablyEmpty(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestProvablyEmptyBoolean(t *testing.T) {
	st := statsFor(10, 20)
	in := Cmp{Col: "x", Op: Eq, Val: column.IntV(15)}
	out := Cmp{Col: "x", Op: Eq, Val: column.IntV(50)}
	if !ProvablyEmpty(NewAnd(in, out), st) {
		t.Fatal("And with an empty branch must prune")
	}
	if ProvablyEmpty(NewAnd(in, in), st) {
		t.Fatal("satisfiable And pruned")
	}
	if !ProvablyEmpty(Or{Preds: []Pred{out, out}}, st) {
		t.Fatal("Or of empty branches must prune")
	}
	if ProvablyEmpty(Or{Preds: []Pred{out, in}}, st) {
		t.Fatal("Or with a satisfiable branch pruned")
	}
	if !ProvablyEmpty(Or{}, st) {
		t.Fatal("empty Or must prune")
	}
	if ProvablyEmpty(True{}, st) {
		t.Fatal("True pruned")
	}
	if ProvablyEmpty(Not{P: out}, st) {
		t.Fatal("Not must be conservative")
	}
}
