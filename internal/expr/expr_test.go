package expr

import (
	"testing"
	"testing/quick"

	"aggcache/internal/column"
)

// fakeSource is a RowSource over delta columns for testing.
type fakeSource struct {
	names []string
	cols  []column.Appender
}

func newFakeSource(names []string, kinds []column.Kind) *fakeSource {
	s := &fakeSource{names: names}
	for _, k := range kinds {
		s.cols = append(s.cols, column.NewDelta(k))
	}
	return s
}

func (s *fakeSource) Col(i int) column.Reader { return s.cols[i] }

func (s *fakeSource) colIndex(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

func (s *fakeSource) add(vals ...column.Value) {
	for i, v := range vals {
		s.cols[i].Append(v)
	}
}

func testSource() *fakeSource {
	s := newFakeSource([]string{"year", "price", "lang"}, []column.Kind{column.Int64, column.Float64, column.String})
	s.add(column.IntV(2012), column.FloatV(9.5), column.StrV("ENG"))
	s.add(column.IntV(2013), column.FloatV(1.0), column.StrV("GER"))
	s.add(column.IntV(2014), column.FloatV(5.5), column.StrV("ENG"))
	return s
}

func evalAll(t *testing.T, s *fakeSource, p Pred) []bool {
	t.Helper()
	b, err := p.Bind(s.colIndex, s)
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	out := make([]bool, 3)
	for i := range out {
		out[i] = b.Eval(i)
	}
	return out
}

func wantRows(t *testing.T, got []bool, want ...bool) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCmpInt(t *testing.T) {
	s := testSource()
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Eq, Val: column.IntV(2013)}), false, true, false)
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Ge, Val: column.IntV(2013)}), false, true, true)
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Lt, Val: column.IntV(2013)}), true, false, false)
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Ne, Val: column.IntV(2013)}), true, false, true)
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Le, Val: column.IntV(2012)}), true, false, false)
	wantRows(t, evalAll(t, s, Cmp{Col: "year", Op: Gt, Val: column.IntV(2013)}), false, false, true)
}

func TestCmpFloatAndString(t *testing.T) {
	s := testSource()
	wantRows(t, evalAll(t, s, Cmp{Col: "price", Op: Gt, Val: column.FloatV(5.0)}), true, false, true)
	wantRows(t, evalAll(t, s, Cmp{Col: "lang", Op: Eq, Val: column.StrV("ENG")}), true, false, true)
}

func TestBoolCombinators(t *testing.T) {
	s := testSource()
	eng := Cmp{Col: "lang", Op: Eq, Val: column.StrV("ENG")}
	y13 := Cmp{Col: "year", Op: Ge, Val: column.IntV(2013)}
	wantRows(t, evalAll(t, s, NewAnd(eng, y13)), false, false, true)
	wantRows(t, evalAll(t, s, Or{Preds: []Pred{eng, y13}}), true, true, true)
	wantRows(t, evalAll(t, s, Not{P: eng}), false, true, false)
	wantRows(t, evalAll(t, s, True{}), true, true, true)
	wantRows(t, evalAll(t, s, Or{}), false, false, false)
	wantRows(t, evalAll(t, s, And{}), true, true, true)
}

func TestNewAndSimplification(t *testing.T) {
	eng := Cmp{Col: "lang", Op: Eq, Val: column.StrV("ENG")}
	if _, ok := NewAnd().(True); !ok {
		t.Fatal("empty NewAnd must be True")
	}
	if p := NewAnd(True{}, eng); p.String() != eng.String() {
		t.Fatalf("single-branch NewAnd = %s", p)
	}
	if p := NewAnd(eng, nil, True{}, eng); p.String() != "(lang = ENG) and (lang = ENG)" {
		t.Fatalf("NewAnd = %s", p)
	}
}

func TestBindErrors(t *testing.T) {
	s := testSource()
	if _, err := (Cmp{Col: "nope", Op: Eq, Val: column.IntV(1)}).Bind(s.colIndex, s); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := (Cmp{Col: "year", Op: Eq, Val: column.StrV("x")}).Bind(s.colIndex, s); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := NewAnd(Cmp{Col: "nope", Op: Eq, Val: column.IntV(1)}, Cmp{Col: "year", Op: Eq, Val: column.IntV(1)}).Bind(s.colIndex, s); err == nil {
		t.Fatal("And with bad child accepted")
	}
	if _, err := (Or{Preds: []Pred{Cmp{Col: "nope", Op: Eq, Val: column.IntV(1)}}}).Bind(s.colIndex, s); err == nil {
		t.Fatal("Or with bad child accepted")
	}
	if _, err := (Not{P: Cmp{Col: "nope", Op: Eq, Val: column.IntV(1)}}).Bind(s.colIndex, s); err == nil {
		t.Fatal("Not with bad child accepted")
	}
}

func TestColumnsDeduplicated(t *testing.T) {
	p := NewAnd(
		Cmp{Col: "a", Op: Eq, Val: column.IntV(1)},
		Or{Preds: []Pred{
			Cmp{Col: "a", Op: Gt, Val: column.IntV(0)},
			Cmp{Col: "b", Op: Lt, Val: column.IntV(9)},
		}},
	)
	cols := p.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns = %v, want [a b]", cols)
	}
}

func TestStrings(t *testing.T) {
	p := NewAnd(
		Cmp{Col: "year", Op: Ge, Val: column.IntV(2013)},
		Not{P: Cmp{Col: "lang", Op: Eq, Val: column.StrV("ENG")}},
	)
	want := "(year >= 2013) and (not (lang = ENG))"
	if p.String() != want {
		t.Fatalf("String = %q, want %q", p.String(), want)
	}
	if Op(99).String() != "?" {
		t.Fatal("unknown op string")
	}
}

// TestShapeElidesLiterals: Shape renders the predicate tree with every
// constant replaced by "?", so predicates differing only in literals
// produce identical shapes — the dedup property the per-shape profiler
// keys on.
func TestShapeElidesLiterals(t *testing.T) {
	p2012 := NewAnd(
		Cmp{Col: "year", Op: Ge, Val: column.IntV(2012)},
		Not{P: Cmp{Col: "lang", Op: Eq, Val: column.StrV("ENG")}},
	)
	p2013 := NewAnd(
		Cmp{Col: "year", Op: Ge, Val: column.IntV(2013)},
		Not{P: Cmp{Col: "lang", Op: Eq, Val: column.StrV("GER")}},
	)
	want := "(year >= ?) and (not (lang = ?))"
	if got := Shape(p2012); got != want {
		t.Fatalf("Shape = %q, want %q", got, want)
	}
	if Shape(p2012) != Shape(p2013) {
		t.Fatalf("shapes differ for literal-only variation:\n%q\n%q", Shape(p2012), Shape(p2013))
	}
	if got := Shape(True{}); got != "true" {
		t.Fatalf("Shape(True) = %q", got)
	}
	or := Or{Preds: []Pred{
		Cmp{Col: "a", Op: Lt, Val: column.IntV(1)},
		Cmp{Col: "b", Op: Ne, Val: column.IntV(2)},
	}}
	if got := Shape(or); got != "(a < ?) or (b <> ?)" {
		t.Fatalf("Shape(or) = %q", got)
	}
}

// Property: the int64 fast path agrees with generic Value comparison for
// every operator.
func TestQuickIntFastPathAgrees(t *testing.T) {
	f := func(vals []int64, c int64, opRaw uint8) bool {
		op := Op(opRaw % 6)
		s := newFakeSource([]string{"x"}, []column.Kind{column.Int64})
		for _, v := range vals {
			s.add(column.IntV(v))
		}
		b, err := (Cmp{Col: "x", Op: op, Val: column.IntV(c)}).Bind(s.colIndex, s)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if b.Eval(i) != op.holds(column.Compare(column.IntV(v), column.IntV(c))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
