// ERP profitability: the paper's motivating scenario (Listing 1).
//
// A financial-accounting dataset — header and item tables persisted as
// business objects plus a product-category dimension — answers a profit and
// loss statement query ("profit per product category, fiscal year 2014, in
// English") under all four execution strategies, before and after new
// bookings arrive in the delta stores. The output shows the subjoin
// accounting behind the speedups of paper Fig. 7.
//
// Run with: go run ./examples/erp_profitability
package main

import (
	"fmt"
	"log"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/workload"
)

func main() {
	cfg := workload.ERPConfig{
		Headers:        20000,
		ItemsPerHeader: 10,
		Categories:     100,
		Languages:      []string{"ENG", "GER", "FRA"},
		Years:          5,
		BaseYear:       2010,
		Seed:           1,
	}
	fmt.Printf("loading ERP dataset: %d headers, %d items, %d categories x %d languages...\n",
		cfg.Headers, cfg.Headers*cfg.ItemsPerHeader, cfg.Categories, len(cfg.Languages))
	erp, err := workload.BuildERP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.NewManager(erp.DB, erp.Reg, core.Config{})
	q := erp.ProfitQuery(2014, "ENG")

	run := func(label string) {
		fmt.Printf("\n-- %s --\n", label)
		fmt.Printf("%-28s %10s %10s %22s\n", "strategy", "time", "groups", "subjoins (exec/total)")
		for _, s := range core.Strategies() {
			// Warm the entry so cached strategies measure usage, then time
			// one execution.
			if s != core.Uncached {
				if _, _, err := mgr.Execute(q, s); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			res, info, err := mgr.Execute(q, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s %10s %10d %13d/%d (md-pruned %d)\n",
				s, time.Since(start).Round(10*time.Microsecond),
				res.Groups(), info.Stats.Executed, info.Stats.Subjoins, info.Stats.PrunedMD)
		}
	}

	run("all history merged into main (empty deltas)")

	fmt.Println("\nposting 2000 new business objects (20000 items) into the deltas...")
	if err := erp.InsertBusinessObjects(2000); err != nil {
		log.Fatal(err)
	}
	run("20000 item rows pending in the delta stores")

	// Show the top of the actual report once.
	res, _, err := mgr.Execute(q, core.CachedFullPruning)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprofit by category (top 5):")
	rows := res.Rows()
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %-22s %12.2f\n", r.Keys[0].S, r.Aggs[0].F)
	}

	fmt.Println("\nsynchronized delta merge of Header and Item (Sec. 5.2)...")
	if err := erp.DB.MergeTables(false, workload.THeader, workload.TItem); err != nil {
		log.Fatal(err)
	}
	if em, ok := mgr.EntryMetrics(q); ok {
		fmt.Printf("cache entry maintained incrementally: maintenances=%d rebuilds=%d\n",
			em.Maintenances, em.Rebuilds)
	}
	run("after the merge")
}
