// CH-benCHmark: the mixed-workload benchmark of paper Sec. 6.4 (Fig. 9).
//
// A scaled TPC-C-derived database is generated with 5% of the
// transactional rows (orders, neworder, orderline; plus in-place stock
// updates) resident in the delta stores. The four analytical queries
// Q3, Q5, Q9, and Q10 then run under every execution strategy, printing
// per-query times and subjoin-pruning statistics. Queries joining many
// tables (Q5 joins seven) make the 2^t - 1 delta-compensation explosion —
// and the matching-dependency pruning that tames it — visible.
//
// Run with: go run ./examples/chbench
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/workload"
)

func main() {
	cfg := workload.DefaultCHConfig()
	fmt.Printf("generating CH-benCHmark data: %d orders x %d lines, %d customers, %d items, %d warehouses (delta share %.0f%%)...\n",
		cfg.Orders, cfg.LinesPerOrder, cfg.Customers, cfg.Items, cfg.Warehouses, cfg.DeltaShare*100)
	ch, err := workload.BuildCH(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.NewManager(ch.DB, ch.Reg, core.Config{})

	names := make([]string, 0, 4)
	for name := range ch.Queries() {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		q := ch.Queries()[name]
		fmt.Printf("\n== %s (%d-table join, %d subjoin combinations uncached) ==\n",
			name, len(q.Tables), 1<<len(q.Tables))
		fmt.Printf("%-28s %12s %28s\n", "strategy", "time", "subjoins exec/pruned-md/empty")
		for _, s := range core.Strategies() {
			if s != core.Uncached {
				if _, _, err := mgr.Execute(q, s); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			_, info, err := mgr.Execute(q, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s %12s %15d/%d/%d\n",
				s, time.Since(start).Round(10*time.Microsecond),
				info.Stats.Executed, info.Stats.PrunedMD, info.Stats.PrunedEmpty)
		}
	}

	// Show one result to prove the queries return real data.
	res, _, err := mgr.Execute(ch.Q5(), core.CachedFullPruning)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ5 revenue by nation (EUROPE):")
	for _, r := range res.Rows() {
		fmt.Printf("  %-12s %14.2f\n", r.Keys[0].S, r.Aggs[0].F)
	}
}
