// Quickstart: the smallest end-to-end use of the aggregate cache.
//
// It creates a two-table schema (orders with their lines), declares the
// object-aware matching dependency, loads a little data, and shows how a
// cached join aggregate stays consistent through inserts (delta
// compensation), deletes (main compensation), and a delta merge
// (incremental maintenance) — without ever being recomputed from scratch.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aggcache/internal/column"
	"aggcache/internal/core"
	"aggcache/internal/md"
	"aggcache/internal/query"
	"aggcache/internal/table"
)

func main() {
	db := table.Open()

	// 1. Schema: a header table and an item table, each with the tid
	// column the matching dependency is built on.
	orders, err := db.Create(table.Schema{
		Name: "orders",
		Cols: []table.ColumnDef{
			{Name: "id", Kind: column.Int64},
			{Name: "customer", Kind: column.String},
			{Name: "tid", Kind: column.Int64},
		},
		PK: "id",
	})
	if err != nil {
		log.Fatal(err)
	}
	lines, err := db.Create(table.Schema{
		Name: "lines",
		Cols: []table.ColumnDef{
			{Name: "id", Kind: column.Int64},
			{Name: "order_id", Kind: column.Int64},
			{Name: "amount", Kind: column.Float64},
			{Name: "tid_order", Kind: column.Int64},
		},
		PK: "id",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Matching dependency: a line agrees with its order on the tid.
	reg := md.NewRegistry(db)
	if err := reg.Add(md.MD{
		Parent: "orders", ParentPK: "id", ParentTID: "tid",
		Child: "lines", ChildFK: "order_id", ChildTID: "tid_order",
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Insert business objects: an order and its lines in one
	// transaction, with the MD enforced at insert time.
	nextLine := int64(1)
	insertOrder := func(id int64, customer string, amounts ...float64) {
		tx := db.Txns().Begin()
		if _, err := orders.Insert(tx, []column.Value{
			column.IntV(id), column.StrV(customer), column.IntV(int64(tx.ID())),
		}); err != nil {
			log.Fatal(err)
		}
		for _, a := range amounts {
			row := []column.Value{
				column.IntV(nextLine), column.IntV(id), column.FloatV(a), column.IntV(0),
			}
			nextLine++
			if err := reg.FillChildTIDs("lines", row); err != nil {
				log.Fatal(err)
			}
			if _, err := lines.Insert(tx, row); err != nil {
				log.Fatal(err)
			}
		}
		tx.Commit()
	}
	insertOrder(1, "acme", 10, 20)
	insertOrder(2, "globex", 5)

	// Merge so the history sits in the read-optimized main stores.
	if err := db.MergeTables(false, "orders", "lines"); err != nil {
		log.Fatal(err)
	}

	// 4. The aggregate query: revenue per customer across the join.
	q := &query.Query{
		Tables: []string{"orders", "lines"},
		Joins: []query.JoinEdge{{
			Left:  query.ColRef{Table: "orders", Col: "id"},
			Right: query.ColRef{Table: "lines", Col: "order_id"},
		}},
		GroupBy: []query.ColRef{{Table: "orders", Col: "customer"}},
		Aggs: []query.AggSpec{
			{Func: query.Sum, Col: query.ColRef{Table: "lines", Col: "amount"}, As: "revenue"},
			{Func: query.Count, As: "lines"},
		},
	}

	mgr := core.NewManager(db, reg, core.Config{})
	show := func(label string) {
		res, info, err := mgr.Execute(q, core.CachedFullPruning)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (hit=%v, subjoins executed %d/%d, MD-pruned %d):\n",
			label, info.CacheHit, info.Stats.Executed, info.Stats.Subjoins, info.Stats.PrunedMD)
		for _, r := range res.Rows() {
			fmt.Printf("  %-8s revenue=%6.1f lines=%d\n", r.Keys[0].S, r.Aggs[0].F, r.Aggs[1].I)
		}
	}

	show("initial (creates the cache entry)")

	// 5. Delta compensation: new data lands in the delta stores; the
	// cached main aggregate is compensated on the fly.
	insertOrder(3, "acme", 7)
	show("after insert (delta compensation)")

	// 6. Invalidation in main: deleting a line that lives in the main
	// store is detected by the visibility bit-vector comparison and
	// compensated in place — single-table entries subtract the rows, join
	// entries apply negative-delta subjoins (the paper's Sec. 8 extension).
	// The next execution is still a cache hit; no rebuild happens.
	tx := db.Txns().Begin()
	if err := lines.Delete(tx, 2); err != nil { // the 20.0 acme line
		log.Fatal(err)
	}
	tx.Commit()
	show("after delete in main (detected via visibility vectors)")

	// 7. Incremental maintenance: the merge folds the delta into the
	// cached entry — no recomputation.
	if err := db.MergeTables(false, "orders", "lines"); err != nil {
		log.Fatal(err)
	}
	// EntryMetrics copies the metrics under the manager lock — the
	// race-safe way to introspect an entry (see the Entry doc comment).
	em, _ := mgr.EntryMetrics(q)
	fmt.Printf("after merge: entry maintained %d time(s) during merges, rebuilt %d time(s)\n",
		em.Maintenances, em.Rebuilds)
	show("after merge (served from the maintained entry)")
}
