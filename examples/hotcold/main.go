// Hot/cold multi-partition aging: paper Sec. 5.4 and Fig. 11.
//
// The same header/item dataset is created twice — once unpartitioned, once
// range-partitioned into a small hot and a large cold partition by
// insertion time. With four stores per table, a two-table join has sixteen
// subjoin combinations; dynamic pruning over the tid matching dependency
// eliminates the cross-temperature and cross-store pairs, keeping cached
// query processing an order of magnitude faster in both layouts.
//
// Run with: go run ./examples/hotcold
package main

import (
	"fmt"
	"log"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/workload"
)

func main() {
	for _, layout := range []struct {
		name      string
		coldShare float64
	}{
		{"unpartitioned", 0},
		{"hot/cold 1:3", 0.75},
	} {
		cfg := workload.DefaultERPConfig()
		cfg.Headers = 20000
		cfg.ColdShare = layout.coldShare
		erp, err := workload.BuildERP(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Recent activity: new objects land in the (hot) delta.
		if err := erp.InsertBusinessObjects(500); err != nil {
			log.Fatal(err)
		}

		hdr := erp.DB.MustTable(workload.THeader)
		fmt.Printf("\n== layout: %s ==\n", layout.name)
		for _, p := range hdr.Partitions() {
			name := p.Name
			if name == "" {
				name = "(single)"
			}
			fmt.Printf("  header partition %-8s main=%6d rows, delta=%4d rows\n",
				name, p.Main.Rows(), p.Delta.Rows())
		}

		mgr := core.NewManager(erp.DB, erp.Reg, core.Config{})
		q := erp.YearRangeQuery(cfg.BaseYear+cfg.Years-1, cfg.BaseYear+cfg.Years)

		fmt.Printf("  %-28s %12s %26s\n", "strategy", "time", "subjoins exec/total (pruned)")
		for _, s := range []core.Strategy{core.Uncached, core.CachedNoPruning, core.CachedFullPruning} {
			if s != core.Uncached {
				if _, _, err := mgr.Execute(q, s); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			_, info, err := mgr.Execute(q, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s %12s %15d/%d (%d)\n",
				s, time.Since(start).Round(10*time.Microsecond),
				info.Stats.Executed, info.Stats.Subjoins,
				info.Stats.PrunedMD+info.Stats.PrunedEmpty)
		}
	}
	fmt.Println("\nnote how partitioning grows the subjoin count (4 stores per table)")
	fmt.Println("while full pruning keeps the executed count at one or two.")
}
