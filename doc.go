// Package aggcache is a from-scratch Go reproduction of "Using
// Object-Awareness to Optimize Join Processing in the SAP HANA Aggregate
// Cache" (Müller, Nica, Butzmann, Klauck, Plattner — EDBT 2015).
//
// The repository implements the full system stack the paper builds on:
//
//   - a columnar in-memory storage engine with the main-delta architecture
//     (internal/column, internal/table): read-optimized main stores with
//     sorted, delta-compressed dictionaries and bit-packed value IDs;
//     append-optimized delta stores; MVCC row visibility; the delta-merge
//     operation; and hot/cold range partitioning,
//   - a transaction layer with monotonically increasing transaction IDs and
//     a consistent view manager rendering visibility bit vectors
//     (internal/txn),
//   - an aggregate-query engine with hash joins, subjoin-combination
//     enumeration over partitioned tables, and incrementally maintainable
//     aggregation tables (internal/query, internal/expr),
//   - matching dependencies carrying application object semantics into the
//     database: insert-time enforcement, the dynamic join-pruning
//     prefilter, and join-predicate pushdown (internal/md), and
//   - the paper's primary contribution, the aggregate cache
//     (internal/core): cached main-store aggregates kept consistent by main
//     and delta compensation, maintained incrementally during delta merges,
//     with profit-based admission and eviction, plus the classical eager
//     and lazy materialized-view baselines.
//
// The experiments of the paper's evaluation section are reproduced in
// internal/bench and runnable via cmd/benchrunner; the testing.B benchmarks
// in bench_test.go cover the same figures. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package aggcache
