// Command aggsql is an interactive SQL shell over the aggregate-cache
// engine, preloaded with one of the demo datasets. It exists to poke at the
// system by hand: run aggregate queries under different execution
// strategies, grow the deltas, trigger merges, and watch the subjoin
// pruning statistics.
//
// Usage:
//
//	aggsql                       # ERP dataset, interactive shell
//	aggsql -dataset ch           # CH-benCHmark dataset
//	aggsql -shards 4             # ERP range-sharded by header id; SELECTs
//	                             # scatter-gather with cross-shard pruning
//	aggsql -c "SELECT ..."       # one statement, then exit
//
// Shell commands:
//
//	\tables              list tables with row counts
//	\strategy <name>     uncached | none | empty | full (default full)
//	\insert <n>          insert n business objects / orders into the deltas
//	\merge               synchronized delta merge of the transactional tables
//	                     (per-shard, concurrent with -shards and -online-merge)
//	\shards              cluster layout (-shards): per-shard key ranges,
//	                     watermarks, store/cache sizes, and the scatter/prune
//	                     counters
//	\cache               show aggregate cache entries sorted by profit
//	\recycler            show the second-level recycler cache (-recycle):
//	                     subjoin partials with hit/top-up tallies and cached
//	                     join build tables
//	\advisor             replay the decision ledger through the shadow-cache
//	                     simulator and print the what-if report (capacity and
//	                     admission-threshold sweeps, eviction policies, tenant
//	                     budget splits)
//	\stats               dump the observability registry (counters, latencies)
//	\slo                 windowed SLO report (error-budget burn over the short
//	                     and long windows) plus the maintenance-governor
//	                     snapshot when -govern is set
//	\shapes              per-query-shape profiles: rolling p50/p99, hit rate,
//	                     compensation cost, delta rows scanned
//	\traces              list flight-recorded query traces (newest first)
//	\traces <id>         print one trace's span tree and critical path
//	\traces export <id> <file>
//	                     write the trace as Chrome trace-event JSON — open
//	                     the file in ui.perfetto.dev or chrome://tracing
//	\audit               run the cache/recycler invariant auditor once and
//	                     print its report
//	\bundle [file]       write the one-shot diagnostics bundle (metrics,
//	                     series, traces, ledger, advisor, SLO, shapes,
//	                     governor, recycler, audit, verifier) as JSON
//	\help                this text
//	\quit                exit
//
// Prefix any SELECT with EXPLAIN ANALYZE to execute it with tracing and
// print the span tree: cache-lookup verdict, main/delta compensation, one
// line per subjoin combination with its prune/pushdown verdict, and the
// critical-path / parallel-efficiency decomposition of the execution.
//
// The shell runs with the query flight recorder on by default (-traces 64
// retained traces, -slow marking traces at or above the threshold as slow so
// they outlive the ring); -traces 0 disables recording.
//
// The shell also runs with the cache decision ledger on by default (-ledger
// sets the ring size, 0 disables): every cache decision is recorded with its
// profit components, feeding \advisor and /debug/advisor. -capacity and
// -min-profit bound the cache so eviction and admission decisions actually
// happen.
//
// With -recycle the manager runs a second-level recycler cache: subjoin
// intermediates admitted during delta compensation are reused across
// queries (exact hits and watermark top-ups), and build-side join hash
// tables are shared. \recycler and /debug/recycler show its contents;
// EXPLAIN ANALYZE shows the per-subjoin recycler verdicts.
//
// With -debug <addr> the shell serves the observability debug endpoint:
// /metrics (registry snapshot as JSON), /debug/cache (cache configuration,
// eviction reasons, and entry metrics sorted by profit), /debug/recycler
// (the recycler cache snapshot), /debug/advisor (the shadow-cache what-if
// report), /debug/slo (the windowed SLO report and governor snapshot),
// /debug/shapes (the per-query-shape profiles), and — with -shards —
// /debug/shards (the cluster layout snapshot).
//
// With -govern the metrics-driven maintenance governor runs in the
// background: it watches delta growth, windowed compensation cost, and SLO
// burn, and triggers online merges of the transactional tables with
// hysteresis and a cooldown (\merge stays available for manual merges).
//
// With -verify-sample <rate> the online shadow verifier re-executes that
// fraction of queries in the background against the uncached oracle under
// the same pinned snapshot, diffing rows and statistics; divergences bump
// verify.divergences, land in the decision ledger as verify-mismatch, and
// persist a replayable reproducer artifact. With -audit <interval> the
// invariant auditor checks cache/recycler bookkeeping on that cadence
// (under -govern it rides the governor's rotation cadence instead); the
// latest report serves at /debug/audit and via \audit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"aggcache/internal/advisor"
	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/query"
	"aggcache/internal/recycler"
	"aggcache/internal/shard"
	"aggcache/internal/sql"
	"aggcache/internal/table"
	"aggcache/internal/verify"
	"aggcache/internal/workload"
)

// shell bundles the loaded dataset with the cache manager and session
// state.
type shell struct {
	db       *table.DB
	mgr      *core.Manager
	strategy core.Strategy
	// sharded is the scatter-gather plane when -shards > 1; SELECTs route
	// through it instead of mgr (which then points at shard 0's manager,
	// backing the single-manager debug surfaces). serp routes inserts to
	// the owning shard.
	sharded *shard.Sharded
	serp    *workload.ShardedERP
	// saud replaces aud in sharded mode: every shard audited independently
	// plus cross-pass watermark monotonicity.
	saud *verify.ShardAuditor
	// insert grows the transactional deltas by n business objects.
	insert func(n int) error
	// mergeTables are the related transactional tables merged together.
	mergeTables []string
	// onlineMerge routes \merge through the non-blocking online merge
	// (concurrent queries keep running; only the swap excludes them).
	onlineMerge bool
	// rec is the query flight recorder behind \traces; nil when disabled.
	rec *obs.Recorder
	// led is the cache decision ledger behind \advisor; nil when disabled.
	led *obs.Ledger
	// gov is the maintenance governor; nil unless -govern.
	gov *core.Governor
	// aud is the invariant auditor behind \audit and /debug/audit.
	aud *verify.Auditor
	// bundle assembles the one-shot diagnostics bundle behind \bundle and
	// /debug/bundle.
	bundle func() *verify.Bundle
}

// insertSharded inserts n business objects, each under its owning shard's
// writer lock (monotonic header ids route new objects to the last shard).
func (sh *shell) insertSharded(n int) error {
	for i := 0; i < n; i++ {
		owner := sh.serp.Cluster.Shard(sh.serp.Cluster.ShardFor(sh.serp.NextHeaderID()))
		owner.DB.Lock()
		err := sh.serp.InsertBusinessObject(sh.serp.Cfg.ItemsPerHeader)
		owner.DB.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// auditReport returns the latest invariant report from whichever auditor
// this shell runs (per-shard cluster passes in sharded mode).
func (sh *shell) auditReport() any {
	if sh.saud != nil {
		return sh.saud.Last()
	}
	return sh.aud.Last()
}

// advisorReport replays the shell's ledger through the shadow-cache
// simulator at the manager's live configuration.
func (sh *shell) advisorReport() *advisor.Report {
	dbg := sh.mgr.CacheDebug()
	return advisor.Analyze(sh.led.Snapshot(), advisor.Options{
		CapacityBytes: dbg.CapacityBytes,
		MinProfit:     dbg.MinProfit,
		Metrics:       sh.mgr.Metrics(),
	})
}

func main() {
	var (
		dataset    = flag.String("dataset", "erp", "erp or ch")
		stmt       = flag.String("c", "", "execute one statement and exit")
		debugAddr  = flag.String("debug", "", "serve the observability debug endpoint (/metrics, /debug/cache, /debug/series, /debug/pprof) on this address")
		sample     = flag.Duration("sample", obs.DefaultSampleInterval, "time-series scrape interval for /debug/series (with -debug)")
		events     = flag.String("events", "", "write structured lifecycle events (JSON lines) to this file; \"-\" for stderr")
		workers    = flag.Int("workers", 0, "subjoin worker-pool size per query; 0 = GOMAXPROCS, 1 = sequential")
		traces     = flag.Int("traces", obs.DefaultTraceCapacity, "flight-recorder ring size (last n query traces retained for \\traces); 0 disables recording")
		slow       = flag.Duration("slow", 100*time.Millisecond, "retain traces at or above this latency in the slow-query log even after the ring cycles; 0 disables the slow log")
		online     = flag.Bool("online-merge", false, "run \\merge as a non-blocking online delta merge instead of the offline critical-section merge")
		ledger     = flag.Int("ledger", obs.DefaultLedgerCapacity, "decision-ledger ring size (last n cache decisions retained for \\advisor and /debug/advisor); 0 disables the ledger")
		capacity   = flag.Uint64("capacity", 0, "cache capacity in bytes (0 = unlimited); evictions feed the ledger and the advisor")
		minProfit  = flag.Float64("min-profit", 0, "cache admission threshold on entry profit (0 admits every self-maintainable query)")
		govern     = flag.Bool("govern", false, "run the metrics-driven maintenance governor (background online merges with hysteresis and cooldown)")
		recycle    = flag.Bool("recycle", false, "run the second-level recycler cache: cross-query reuse of subjoin intermediates (exact hits and watermark top-ups) and join build tables; \\recycler and /debug/recycler show its contents")
		recycleCap = flag.Uint64("recycle-capacity", 0, "recycler capacity in bytes for subjoin partials, and again for build tables (0 = unlimited); lowest-profit entries are evicted first")
		sloTarget  = flag.Duration("slo-target", obs.DefaultSLOTarget, "per-query latency target for the SLO tracker (\\slo, /debug/slo)")
		sloObj     = flag.Float64("slo-objective", obs.DefaultSLOObjective, "fraction of queries that must meet the SLO target")
		verifyRate = flag.Float64("verify-sample", 0, "fraction of queries shadow-verified in the background against the uncached oracle (0 disables); divergences are counted, ledgered, and persisted as reproducer artifacts")
		verifySeed = flag.Uint64("verify-seed", 0, "seed perturbing the deterministic shadow-verification sampler")
		auditEvery = flag.Duration("audit", 0, "run the cache/recycler invariant auditor on this cadence (0 disables the standalone loop; with -govern audits ride the governor's rotation cadence regardless)")
		nshards    = flag.Int("shards", 1, "range-shard the erp dataset by header id into this many shards; >1 runs every SELECT through the scatter-gather executor with cross-shard pruning (\\shards, /debug/shards); results are identical at every count")
	)
	flag.Parse()

	// Install the event log before loading the dataset, so the database and
	// the cache manager pick it up through obs.Events(). The log tees
	// through an in-memory tail so the diagnostics bundle can snapshot the
	// last events without re-reading the file.
	eventTail := obs.NewLineTail(obs.DefaultTailLines)
	if *events != "" {
		var w io.Writer = os.Stderr
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aggsql: events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		obs.SetDefaultEvents(obs.NewEventLog(io.MultiWriter(w, eventTail)))
	}

	var rec *obs.Recorder
	if *traces > 0 {
		rec = obs.NewRecorder(obs.RecorderConfig{Capacity: *traces, SlowThreshold: *slow})
	}

	var led *obs.Ledger
	if *ledger > 0 {
		led = obs.NewLedger(*ledger)
	}

	var rc *recycler.Cache
	if *recycle {
		rc = recycler.New(recycler.Config{
			CapacityBytes:      *recycleCap,
			BuildCapacityBytes: *recycleCap,
		})
	}

	sh, err := load(*dataset, *nshards, core.Config{
		Workers:       *workers,
		Recorder:      rec,
		Ledger:        led,
		Recycler:      rc,
		CapacityBytes: *capacity,
		MinProfit:     *minProfit,
		SLO:           obs.NewSLO(obs.SLOConfig{Target: *sloTarget, Objective: *sloObj}),
		Shapes:        obs.NewShapes(obs.DefaultShapeCapacity, obs.DefaultShapeWindowSlots),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggsql: %v\n", err)
		os.Exit(1)
	}
	sh.onlineMerge = *online

	// The invariant auditor backs \audit, /debug/audit, and the bundle's
	// audit section; governed processes run it on the governor's rotation
	// cadence, ungoverned ones on the -audit interval (or on demand). A
	// sharded shell audits every shard independently instead.
	if sh.sharded != nil {
		sh.saud = verify.NewShardAuditor(sh.sharded, verify.AuditorConfig{})
	} else {
		sh.aud = verify.NewAuditor(sh.mgr, verify.AuditorConfig{})
	}

	// The governor owns the rolling-window rotation; without it the windows
	// still fill but never rotate (the background sampler takes over below
	// when -debug runs one). With -govern it also merges the transactional
	// deltas when the signals say so, and carries the invariant audits. A
	// sharded shell runs one governor per shard — each watches its own
	// shard's delta growth and merges it online with no cross-shard pause.
	switch {
	case *govern && sh.sharded != nil:
		sh.sharded.Govern(core.GovernorConfig{
			Tables:        sh.mergeTables,
			DeltaRowsHigh: 20000,
			CompP99HighUS: 5000,
		})
		sh.sharded.StartGovernors()
		defer sh.sharded.StopGovernors()
	case *govern:
		sh.gov = core.NewGovernor(sh.mgr, core.GovernorConfig{
			Tables:        sh.mergeTables,
			DeltaRowsHigh: 20000,
			CompP99HighUS: 5000,
			Audit:         func() { sh.aud.RunOnce() },
		})
		sh.gov.Start()
		defer sh.gov.Stop()
	case *auditEvery > 0 && sh.sharded != nil:
		sh.saud.Start(*auditEvery)
		defer sh.saud.Stop()
	case *auditEvery > 0:
		sh.aud.Start(*auditEvery)
		defer sh.aud.Stop()
	}

	// The online shadow verifier re-executes a deterministic sample of
	// queries against the uncached oracle in the background; detach the
	// hook before draining so in-flight captures still verify. A sharded
	// shell attaches one verifier per shard manager — a per-shard
	// divergence is exactly a cluster divergence (the gather fold is
	// additive), caught without re-running the whole scatter.
	var verifier *verify.Verifier
	if *verifyRate > 0 {
		vcfg := verify.Config{
			SampleRate: *verifyRate,
			Seed:       *verifySeed,
			Recorder:   rec,
		}
		if sh.sharded != nil {
			vs := verify.AttachPerShard(sh.sharded, vcfg)
			defer func() {
				for _, m := range sh.sharded.Managers() {
					m.SetShadow(nil)
				}
				verify.StopAll(vs)
			}()
		} else {
			verifier = verify.Attach(sh.mgr, vcfg)
			defer func() {
				sh.mgr.SetShadow(nil)
				verifier.Stop()
			}()
		}
	}

	var sampler *obs.Sampler
	sh.bundle = func() *verify.Bundle {
		var advisorThunk func() any
		if led != nil {
			advisorThunk = func() any { return sh.advisorReport() }
		}
		var governorThunk func() any
		if sh.gov != nil {
			governorThunk = func() any { return sh.gov.Snapshot() }
		}
		var recyclerThunk func() any
		if rc != nil {
			recyclerThunk = func() any { return rc.Debug() }
		}
		return verify.Collect(verify.BundleSources{
			Meta:     map[string]string{"binary": "aggsql", "dataset": *dataset},
			Registry: sh.mgr.Metrics(),
			Sampler:  sampler,
			Events:   eventTail,
			Recorder: rec,
			Ledger:   led,
			Advisor:  advisorThunk,
			Shapes:   sh.mgr.Shapes(),
			SLO:      sh.mgr.SLO(),
			Governor: governorThunk,
			Recycler: recyclerThunk,
			Cache:    func() any { return sh.mgr.CacheDebug() },
			Auditor:  sh.aud,
			Verifier: verifier,
		})
	}

	if *debugAddr != "" {
		scfg := obs.SamplerConfig{Interval: *sample}
		if sh.gov == nil {
			// No governor: the sampler owns window rotation so the SLO
			// error budgets and per-shape quantiles still advance.
			scfg.Rotate = sh.mgr.RotateWindows
		}
		sampler = obs.NewSampler(sh.mgr.Metrics(), scfg)
		sampler.Start()
		defer sampler.Stop()
		var advisorSource func() (any, string)
		if led != nil {
			advisorSource = func() (any, string) {
				rep := sh.advisorReport()
				var sb strings.Builder
				rep.Render(&sb)
				return rep, sb.String()
			}
		}
		var governor func() any
		if sh.gov != nil {
			governor = func() any { return sh.gov.Snapshot() }
		}
		var recyclerDump func() any
		if rc != nil {
			recyclerDump = func() any { return rc.Debug() }
		}
		var shardsDump func() any
		if sh.sharded != nil {
			shardsDump = func() any { return sh.sharded.Snapshot() }
		}
		addr, err := obs.ServeDebug(*debugAddr, sh.mgr.Metrics(), obs.DebugOptions{
			CacheDump: func() any { return sh.mgr.CacheDebug() },
			Sampler:   sampler,
			Recorder:  rec,
			Advisor:   advisorSource,
			SLO:       sh.mgr.SLO(),
			Shapes:    sh.mgr.Shapes(),
			Governor:  governor,
			Recycler:  recyclerDump,
			Audit:     func() any { return sh.auditReport() },
			Shards:    shardsDump,
			Bundle:    func() any { return sh.bundle() },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggsql: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug endpoint on http://%s/ (index), /metrics, /debug/cache, /debug/series, /debug/traces, /debug/advisor, /debug/slo, /debug/shapes, /debug/audit, /debug/bundle\n", addr)
	}

	if *stmt != "" {
		if err := sh.runStatement(*stmt); err != nil {
			fmt.Fprintf(os.Stderr, "aggsql: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("aggsql: %s dataset loaded; \\help for commands\n", *dataset)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("aggsql> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && strings.HasPrefix(trimmed, "\\"):
			if done := sh.runCommand(trimmed); done {
				return
			}
			fmt.Print("aggsql> ")
			continue
		case buf.Len() == 0 && trimmed == "":
			fmt.Print("aggsql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			if err := sh.runStatement(buf.String()); err != nil {
				fmt.Printf("error: %v\n", err)
			}
			buf.Reset()
			fmt.Print("aggsql> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
}

func load(dataset string, shards int, mgrCfg core.Config) (*shell, error) {
	if shards > 1 && dataset != "erp" {
		return nil, fmt.Errorf("-shards applies to the erp dataset only")
	}
	switch dataset {
	case "erp":
		cfg := workload.DefaultERPConfig()
		cfg.Headers = 20000
		if shards > 1 {
			// Sharded shell: the same dataset range-partitioned by header id,
			// one cache manager per shard, SELECTs scatter-gathered. Every
			// shard's manager shares one registry (cluster totals) — the
			// shard.* dispatch metrics land there too.
			if mgrCfg.Metrics == nil {
				mgrCfg.Metrics = obs.Default()
			}
			serp, err := workload.BuildShardedERP(cfg, shards)
			if err != nil {
				return nil, err
			}
			s := shard.New(serp.Cluster, shard.Config{Manager: mgrCfg, Metrics: mgrCfg.Metrics})
			sh := &shell{
				db:          serp.Cluster.Shard(0).DB,
				mgr:         s.Manager(0),
				sharded:     s,
				serp:        serp,
				strategy:    core.CachedFullPruning,
				mergeTables: []string{workload.THeader, workload.TItem},
				rec:         mgrCfg.Recorder,
				led:         mgrCfg.Ledger,
			}
			sh.insert = sh.insertSharded
			return sh, nil
		}
		erp, err := workload.BuildERP(cfg)
		if err != nil {
			return nil, err
		}
		return &shell{
			db:          erp.DB,
			mgr:         core.NewManager(erp.DB, erp.Reg, mgrCfg),
			strategy:    core.CachedFullPruning,
			insert:      erp.InsertBusinessObjects,
			mergeTables: []string{workload.THeader, workload.TItem},
			rec:         mgrCfg.Recorder,
			led:         mgrCfg.Ledger,
		}, nil
	case "ch":
		ch, err := workload.BuildCH(workload.DefaultCHConfig())
		if err != nil {
			return nil, err
		}
		return &shell{
			db:       ch.DB,
			mgr:      core.NewManager(ch.DB, ch.Reg, mgrCfg),
			strategy: core.CachedFullPruning,
			rec:      mgrCfg.Recorder,
			led:      mgrCfg.Ledger,
			insert: func(n int) error {
				for i := 0; i < n; i++ {
					if err := ch.InsertOrder(); err != nil {
						return err
					}
				}
				return nil
			},
			mergeTables: []string{workload.TOrders, workload.TNewOrder, workload.TOrderline},
		}, nil
	}
	return nil, fmt.Errorf("unknown dataset %q (erp or ch)", dataset)
}

func (sh *shell) runStatement(stmt string) error {
	// EXPLAIN ANALYZE <select>: execute with tracing and print the span
	// tree instead of the result rows.
	if rest, ok := stripExplainAnalyze(stmt); ok {
		return sh.runExplainAnalyze(rest)
	}
	st, err := sql.Parse(sh.db, stmt)
	if err != nil {
		return err
	}
	if sh.sharded != nil {
		start := time.Now()
		res, info, err := sh.sharded.Execute(st.Query, sh.strategy)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		printResult(st, res)
		fmt.Printf("-- %d group(s) in %s [%s: scattered %d/%d shards (pruned %d: empty %d, md %d, scan %d), delta on %d shard(s), cache hits %d, subjoins %d/%d]\n",
			res.Groups(), elapsed.Round(10*time.Microsecond), info.Strategy,
			info.Scattered, sh.sharded.NumShards(), info.Pruned,
			info.PrunedEmpty, info.PrunedMD, info.PrunedScan,
			info.DeltaShards, info.CacheHits, info.Stats.Executed, info.Stats.Subjoins)
		return nil
	}
	start := time.Now()
	res, info, err := sh.mgr.Execute(st.Query, sh.strategy)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	printResult(st, res)
	fmt.Printf("-- %d group(s) in %s [%s: hit=%v subjoins %d/%d, md-pruned %d, empty-pruned %d, pushdowns %d]\n",
		res.Groups(), elapsed.Round(10*time.Microsecond), info.Strategy, info.CacheHit,
		info.Stats.Executed, info.Stats.Subjoins, info.Stats.PrunedMD,
		info.Stats.PrunedEmpty, info.Stats.Pushdowns)
	return nil
}

// stripExplainAnalyze detects a leading EXPLAIN ANALYZE (case-insensitive)
// and returns the statement after it.
func stripExplainAnalyze(stmt string) (string, bool) {
	fields := strings.Fields(stmt)
	if len(fields) < 3 ||
		!strings.EqualFold(fields[0], "EXPLAIN") || !strings.EqualFold(fields[1], "ANALYZE") {
		return "", false
	}
	trimmed := strings.TrimSpace(stmt)
	trimmed = strings.TrimSpace(trimmed[len(fields[0]):])
	return strings.TrimSpace(trimmed[len(fields[1]):]), true
}

func (sh *shell) runExplainAnalyze(stmt string) error {
	st, err := sql.Parse(sh.db, stmt)
	if err != nil {
		return err
	}
	if sh.sharded != nil {
		// Sharded explain: the scatter span carries the dispatch/prune
		// verdict per shard; per-shard execution detail stays in each
		// shard's own trace recorder.
		sp := obs.StartSpan("scatter " + st.Query.Fingerprint())
		res, info, err := sh.sharded.ExecuteSpan(st.Query, sh.strategy, sp)
		sp.End()
		if err != nil {
			return err
		}
		sp.Render(os.Stdout)
		fmt.Printf("-- %d group(s) in %s [%s: scattered %d/%d shards (pruned %d: empty %d, md %d, scan %d), delta on %d shard(s), cache hits %d, subjoins %d/%d, rows scanned %d]\n",
			res.Groups(), info.Total.Round(10*time.Microsecond), info.Strategy,
			info.Scattered, sh.sharded.NumShards(), info.Pruned,
			info.PrunedEmpty, info.PrunedMD, info.PrunedScan,
			info.DeltaShards, info.CacheHits, info.Stats.Executed, info.Stats.Subjoins,
			info.Stats.RowsScanned)
		return nil
	}
	res, info, sp, err := sh.mgr.ExplainAnalyze(st.Query, sh.strategy)
	if err != nil {
		return err
	}
	sp.Render(os.Stdout)
	obs.Analyze(sp).Render(os.Stdout)
	shape := st.Query.Shape()
	if prof, ok := sh.mgr.Shapes().Profile(shape); ok {
		fmt.Printf("-- shape: %s\n-- shape history: %d queries, hit rate %.0f%%, rolling p50=%dus p99=%dus\n",
			shape, prof.Queries, prof.HitRate*100, prof.Window.P50US, prof.Window.P99US)
	} else {
		fmt.Printf("-- shape: %s (no profile yet)\n", shape)
	}
	if info.Regret > 0 {
		fmt.Printf("-- regret: this miss was a ledger-predicted hit at capacity %.1fx\n", info.Regret)
	}
	fmt.Printf("-- %d group(s) in %s [%s: hit=%v subjoins %d/%d, md-pruned %d, scan-pruned %d, empty-pruned %d, pushdowns %d, rows scanned %d]\n",
		res.Groups(), info.Total.Round(10*time.Microsecond), info.Strategy, info.CacheHit,
		info.Stats.Executed, info.Stats.Subjoins, info.Stats.PrunedMD, info.Stats.PrunedScan,
		info.Stats.PrunedEmpty, info.Stats.Pushdowns, info.Stats.RowsScanned)
	return nil
}

func printResult(st *sql.Statement, res *query.AggTable) {
	rows := st.Rows(res)
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, st.Columns)
	for _, vals := range rows {
		line := make([]string, len(vals))
		for i, v := range vals {
			line[i] = v.String()
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(st.Columns))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range cells {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.Join(parts, "  "))
		if ri == 0 {
			fmt.Println(strings.Repeat("-", len(strings.Join(parts, "  "))))
		}
	}
}

// runCommand handles backslash commands; it reports whether to exit.
func (sh *shell) runCommand(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`\tables  \strategy <uncached|none|empty|full>  \insert <n>  \merge  \shards  \cache  \recycler  \advisor  \stats  \slo  \shapes  \audit  \bundle  \quit
\shards                     cluster layout and scatter/prune counters (-shards <n>)
\slo                        windowed SLO report and governor snapshot (-govern)
\shapes                     per-query-shape profiles (rolling p50/p99, hit rate)
\audit                      run the cache/recycler invariant auditor once
\bundle [file]              write the one-shot diagnostics bundle as JSON
\traces                     list flight-recorded query traces (newest first)
\traces <id>                print one trace's span tree and critical path
\traces export <id> <file>  write the trace as Chrome trace-event JSON (ui.perfetto.dev)
EXPLAIN ANALYZE <select>;   trace one execution and print the span tree`)
	case "\\tables":
		if sh.sharded != nil {
			for _, ss := range sh.sharded.Snapshot().PerShard {
				fmt.Printf("shard %d [%d, %d):\n", ss.Index, ss.RangeLo, ss.RangeHi)
				for _, ts := range ss.Tables {
					fmt.Printf("  %-18s main=%8d  delta=%6d  partitions=%d\n",
						ts.Name, ts.MainRows, ts.DeltaRows, ts.Partitions)
				}
			}
			break
		}
		for _, name := range sh.db.TableNames() {
			t := sh.db.MustTable(name)
			main, delta := 0, 0
			for _, p := range t.Partitions() {
				main += p.Main.Rows()
				delta += p.Delta.Rows()
			}
			fmt.Printf("  %-18s main=%8d  delta=%6d  partitions=%d\n",
				name, main, delta, len(t.Partitions()))
		}
	case "\\strategy":
		if len(fields) != 2 {
			fmt.Println("usage: \\strategy <uncached|none|empty|full>")
			break
		}
		switch fields[1] {
		case "uncached":
			sh.strategy = core.Uncached
		case "none":
			sh.strategy = core.CachedNoPruning
		case "empty":
			sh.strategy = core.CachedEmptyDelta
		case "full":
			sh.strategy = core.CachedFullPruning
		default:
			fmt.Printf("unknown strategy %q\n", fields[1])
			return false
		}
		fmt.Printf("strategy = %s\n", sh.strategy)
	case "\\insert":
		n := 100
		if len(fields) == 2 {
			if v, err := strconv.Atoi(fields[1]); err == nil {
				n = v
			}
		}
		start := time.Now()
		// Same write-lock discipline as the serve soak's writers: the
		// background shadow verifier scans under the read lock, so delta
		// appends must exclude it. Sharded inserts take each owning
		// shard's lock inside insertSharded instead.
		var err error
		if sh.sharded != nil {
			err = sh.insert(n)
		} else {
			sh.db.Lock()
			err = sh.insert(n)
			sh.db.Unlock()
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("inserted %d business objects in %s\n", n, time.Since(start).Round(time.Millisecond))
	case "\\merge":
		start := time.Now()
		merge, kind := sh.db.MergeTables, "merged"
		if sh.sharded != nil {
			// Sharded merges run per shard with no cross-shard pause; the
			// online variant merges all shards concurrently.
			merge, kind = sh.serp.Cluster.MergeTables, "merged (all shards)"
			if sh.onlineMerge {
				merge, kind = sh.serp.Cluster.MergeTablesOnlineConcurrent, "online-merged (all shards, concurrent)"
			}
		} else if sh.onlineMerge {
			merge, kind = sh.db.MergeTablesOnline, "online-merged"
		}
		if err := merge(false, sh.mergeTables...); err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("%s %s in %s\n", kind, strings.Join(sh.mergeTables, ", "), time.Since(start).Round(time.Millisecond))
	case "\\shards":
		if sh.sharded == nil {
			fmt.Println("not sharded (run with -shards <n>)")
			break
		}
		snap := sh.sharded.Snapshot()
		fmt.Printf("shards=%d boundaries=%v\n", snap.Shards, snap.Boundaries)
		fmt.Printf("queries=%d scattered=%d pruned=%d (empty=%d md=%d scan=%d) delta-single=%d/%d\n",
			snap.Queries, snap.Scattered, snap.Pruned,
			snap.PrunedEmpty, snap.PrunedMD, snap.PrunedScan,
			snap.DeltaSingle, snap.Queries)
		for _, ss := range snap.PerShard {
			main, delta := 0, 0
			for _, ts := range ss.Tables {
				main += ts.MainRows
				delta += ts.DeltaRows
			}
			fmt.Printf("  shard %d [%d, %d): watermark=%d main=%d delta=%d cache entries=%d bytes=%d\n",
				ss.Index, ss.RangeLo, ss.RangeHi, ss.Watermark, main, delta,
				ss.CacheEntries, ss.CacheBytes)
		}
	case "\\cache":
		dbg := sh.mgr.CacheDebug()
		fmt.Printf("entries=%d totalBytes=%d capacity=%d minProfit=%g\n",
			dbg.Entries, dbg.Bytes, dbg.CapacityBytes, dbg.MinProfit)
		if dbg.Evictions > 0 {
			fmt.Printf("evictions=%d (capacity=%d stale=%d min-profit=%d) regretGhosts=%d\n",
				dbg.Evictions, dbg.EvictionsByReason[core.EvictCapacity],
				dbg.EvictionsByReason[core.EvictStale], dbg.EvictionsByReason[core.EvictMinProfit],
				dbg.RegretGhosts)
		}
		for _, e := range dbg.ByProfit {
			staleMark := ""
			if e.Stale {
				staleMark = " STALE"
			}
			fmt.Printf("  profit=%10.3f hits=%-5d size=%-8d dirty=%-4d rebuilds=%d maint=%d%s\n    %s\n",
				e.Profit, e.Hits, e.SizeBytes, e.DirtyCounter, e.Rebuilds, e.Maintenances, staleMark, e.Key)
		}
	case "\\recycler":
		rc := sh.mgr.Recycler()
		if rc == nil {
			fmt.Println("recycler disabled (run with -recycle)")
			break
		}
		dbg := rc.Debug()
		fmt.Printf("partials=%d bytes=%d capacity=%d  hits=%d misses=%d topups=%d bypasses=%d evictions=%d invalidations=%d\n",
			dbg.Entries, dbg.Bytes, dbg.CapacityBytes,
			dbg.Hits, dbg.Misses, dbg.Topups, dbg.Bypasses, dbg.Evictions, dbg.Invalidations)
		fmt.Printf("builds=%d bytes=%d capacity=%d  hits=%d misses=%d evictions=%d\n",
			dbg.BuildEntries, dbg.BuildBytes, dbg.BuildCapacityBytes,
			dbg.BuildHits, dbg.BuildMisses, dbg.BuildEvictions)
		for _, e := range dbg.Partials {
			fmt.Printf("  profit=%10.3f hits=%-5d topups=%-4d groups=%-6d cost-rows=%-8d wm=%-6d size=%d\n    %s\n",
				e.Profit, e.Hits, e.Topups, e.Groups, e.CostRows, e.SnapHigh, e.Bytes, e.Key)
		}
		for _, b := range dbg.Builds {
			fmt.Printf("  build rows=%-8d hits=%-5d size=%-8d %s\n", b.Rows, b.Hits, b.Bytes, b.Key)
		}
	case "\\stats":
		// Sorted-name iteration keeps the dump deterministic for goldens
		// and diffs.
		snap := sh.mgr.Metrics().Snapshot()
		for _, name := range snap.CounterNames() {
			fmt.Printf("  %-28s %d\n", name, snap.Counters[name])
		}
		for _, name := range snap.GaugeNames() {
			fmt.Printf("  %-28s %d\n", name, snap.Gauges[name])
		}
		for _, name := range snap.HistogramNames() {
			h := snap.Histograms[name]
			fmt.Printf("  %-28s count=%d mean=%.0fus p50=%dus p99=%dus\n",
				name, h.Count, h.MeanUS, h.P50US, h.P99US)
		}
	case "\\slo":
		sh.mgr.SLO().Report().Render(os.Stdout)
		if sh.gov != nil {
			snap := sh.gov.Snapshot()
			fmt.Printf("governor: ticks=%d merges=%d ages=%d armed=%v overloaded=%v queue=%d burn-short=%.2f delta-rows=%d\n",
				snap.Ticks, snap.Merges, snap.Ages, snap.Armed,
				snap.Overload.Overloaded, snap.Overload.QueueDepth,
				snap.Overload.BurnShort, snap.Overload.DeltaRows)
			if snap.LastAction != "" {
				fmt.Printf("governor: last action %s (%s)\n", snap.LastAction, snap.LastReason)
			}
		} else {
			fmt.Println("governor: off (run with -govern)")
		}
	case "\\shapes":
		profiles := sh.mgr.Shapes().Profiles()
		if len(profiles) == 0 {
			fmt.Println("no shape profiles yet — run a query first")
			break
		}
		fmt.Printf("  %7s  %6s  %9s  %9s  %9s  %10s  %s\n",
			"queries", "hit%", "p50us", "p99us", "comp-us", "delta-rows", "shape")
		for _, p := range profiles {
			fmt.Printf("  %7d  %5.1f%%  %9d  %9d  %9.0f  %10.0f  %s\n",
				p.Queries, p.HitRate*100, p.Window.P50US, p.Window.P99US,
				p.MeanCompUS, p.MeanDeltaRows, p.Shape)
		}
	case "\\advisor":
		if !sh.led.Enabled() {
			fmt.Println("decision ledger disabled (run with -ledger <n>)")
			break
		}
		sh.advisorReport().Render(os.Stdout)
	case "\\audit":
		if sh.saud != nil {
			rep := sh.saud.RunOnce()
			status := "OK"
			if !rep.OK {
				status = fmt.Sprintf("%d VIOLATION(S)", len(rep.Violations))
			}
			fmt.Printf("cluster audit pass %d: %s\n", rep.Passes, status)
			for i, sr := range rep.PerShard {
				fmt.Printf("  shard %d: watermark=%d entries=%d bytes=%d (summed %d) ghosts=%d\n",
					i, rep.Watermarks[i], sr.Cache.Entries, sr.Cache.AccountedBytes,
					sr.Cache.SummedBytes, sr.Cache.Ghosts)
			}
			for _, v := range rep.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			break
		}
		rep := sh.aud.RunOnce()
		status := "OK"
		if !rep.OK {
			status = fmt.Sprintf("%d VIOLATION(S)", len(rep.Violations))
		}
		fmt.Printf("audit pass %d: %s\n", rep.Passes, status)
		fmt.Printf("  cache:    entries=%d bytes=%d (summed %d) watermark=%d ghosts=%d\n",
			rep.Cache.Entries, rep.Cache.AccountedBytes, rep.Cache.SummedBytes,
			rep.Cache.Watermark, rep.Cache.Ghosts)
		if rep.Recycler != nil {
			fmt.Printf("  recycler: partials=%d bytes=%d (summed %d) builds=%d stale-guards=%d\n",
				rep.Recycler.Entries, rep.Recycler.AccountedBytes, rep.Recycler.SummedBytes,
				rep.Recycler.BuildEntries, rep.Recycler.StaleGuards)
		}
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
	case "\\bundle":
		path := "aggcache-bundle.json"
		if len(fields) == 2 {
			path = fields[1]
		}
		body, err := json.MarshalIndent(sh.bundle(), "", "  ")
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("wrote diagnostics bundle (schema v%d, %d bytes) to %s\n",
			verify.BundleSchemaVersion, len(body), path)
	case "\\traces":
		sh.runTraces(fields[1:])
	default:
		fmt.Printf("unknown command %s (\\help)\n", fields[0])
	}
	return false
}

// runTraces implements \traces: list retained traces, print one, or export
// one as a Chrome trace-event file.
func (sh *shell) runTraces(args []string) {
	if !sh.rec.Enabled() {
		fmt.Println("flight recorder disabled (run with -traces <n>)")
		return
	}
	switch {
	case len(args) == 0:
		list := sh.rec.List()
		if len(list) == 0 {
			fmt.Println("no traces recorded yet — run a query first")
			return
		}
		fmt.Printf("  %4s  %-10s  %6s  %s\n", "id", "duration", "spans", "query")
		for _, s := range list {
			slowMark := ""
			if s.Slow {
				slowMark = "  SLOW"
			}
			fmt.Printf("  %4d  %-10s  %6d  %s%s\n",
				s.ID, time.Duration(s.DurNS).Round(10*time.Microsecond), s.Spans, s.Name, slowMark)
		}
	case args[0] == "export":
		if len(args) != 3 {
			fmt.Println("usage: \\traces export <id> <file>")
			return
		}
		id, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fmt.Printf("bad trace id %q\n", args[1])
			return
		}
		tr, ok := sh.rec.Get(id)
		if !ok {
			fmt.Printf("trace %d not retained (\\traces lists the live ids)\n", id)
			return
		}
		f, err := os.Create(args[2])
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		if err := tr.WriteTraceEvents(f); err != nil {
			f.Close()
			fmt.Printf("error: %v\n", err)
			return
		}
		if err := f.Close(); err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("wrote %s — open it in ui.perfetto.dev or chrome://tracing\n", args[2])
	default:
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			fmt.Printf("usage: \\traces [<id> | export <id> <file>]\n")
			return
		}
		tr, ok := sh.rec.Get(id)
		if !ok {
			fmt.Printf("trace %d not retained (\\traces lists the live ids)\n", id)
			return
		}
		tr.Root.Render(os.Stdout)
		obs.Analyze(tr.Root).Render(os.Stdout)
	}
}
