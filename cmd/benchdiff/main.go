// Command benchdiff compares BENCH_<exp>.json files produced by
// benchrunner -json and exits non-zero when a candidate run regresses its
// baseline's latency series beyond a threshold — the perf-regression gate
// CI runs against the committed baselines.
//
// Usage:
//
//	benchdiff [flags] baseline.json candidate.json [baseline2 candidate2 ...]
//
// Arguments are consecutive baseline/candidate pairs, so one invocation
// gates every experiment: each pair is diffed independently, a summary
// line lists the verdict per pair, and the exit code is 1 if ANY pair
// regresses.
//
//	-threshold 0.10   relative slowdown flagged as a regression (10%)
//	-hard-fail 2.0    slowdown factor that always fails, even with -warn-only
//	                  (0 disables the hard tier)
//	-warn-only        report soft regressions but exit 0 (noisy CI runners);
//	                  hard regressions still fail
//
// Exit codes: 0 no regression (or warn-only), 1 regression in at least one
// pair, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aggcache/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests drive the full CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0.10, "relative latency increase flagged as a regression")
		hardFail  = fs.Float64("hard-fail", 2.0, "latency factor that fails even with -warn-only (0 disables)")
		warnOnly  = fs.Bool("warn-only", false, "report soft regressions without failing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 || fs.NArg()%2 != 0 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] baseline.json candidate.json [baseline2 candidate2 ...]")
		return 2
	}

	type verdict struct {
		pair string // "baseline vs candidate"
		word string // PASS, WARN, or FAIL
	}
	var verdicts []verdict
	exit := 0
	for i := 0; i < fs.NArg(); i += 2 {
		basePath, candPath := fs.Arg(i), fs.Arg(i+1)
		base, err := bench.LoadReport(basePath)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
			return 2
		}
		cand, err := bench.LoadReport(candPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: candidate: %v\n", err)
			return 2
		}
		d := bench.DiffReports(base, cand, bench.DiffOptions{Threshold: *threshold, HardFactor: *hardFail})
		d.Render(stdout)
		v := verdict{pair: basePath + " vs " + candPath, word: "PASS"}
		switch {
		case len(d.HardRegressions()) > 0:
			fmt.Fprintf(stderr, "benchdiff: FAIL: hard regression (%s)\n", d.ShaPair())
			v.word = "FAIL"
			exit = 1
		case len(d.Regressions()) > 0 && !*warnOnly:
			fmt.Fprintf(stderr, "benchdiff: FAIL: latency regression beyond threshold (%s)\n", d.ShaPair())
			v.word = "FAIL"
			exit = 1
		case len(d.Regressions()) > 0:
			fmt.Fprintf(stderr, "benchdiff: WARN: latency regression beyond threshold (warn-only, %s)\n", d.ShaPair())
			v.word = "WARN"
		}
		verdicts = append(verdicts, v)
	}
	// One summary line per pair, so a multi-experiment CI gate shows which
	// experiment moved without scrolling through every diff table.
	if len(verdicts) > 1 {
		fmt.Fprintf(stdout, "\n%d pair(s):\n", len(verdicts))
		for _, v := range verdicts {
			fmt.Fprintf(stdout, "  %-4s %s\n", v.word, v.pair)
		}
	}
	return exit
}
