// Command benchdiff compares two BENCH_<exp>.json files produced by
// benchrunner -json and exits non-zero when the candidate run regresses the
// baseline's latency series beyond a threshold — the perf-regression gate
// CI runs against the committed baseline.
//
// Usage:
//
//	benchdiff [flags] baseline.json candidate.json
//
//	-threshold 0.10   relative slowdown flagged as a regression (10%)
//	-hard-fail 2.0    slowdown factor that always fails, even with -warn-only
//	                  (0 disables the hard tier)
//	-warn-only        report soft regressions but exit 0 (noisy CI runners);
//	                  hard regressions still fail
//
// Exit codes: 0 no regression (or warn-only), 1 regression, 2 usage or
// input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aggcache/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests drive the full CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0.10, "relative latency increase flagged as a regression")
		hardFail  = fs.Float64("hard-fail", 2.0, "latency factor that fails even with -warn-only (0 disables)")
		warnOnly  = fs.Bool("warn-only", false, "report soft regressions without failing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] baseline.json candidate.json")
		return 2
	}
	base, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	cand, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: candidate: %v\n", err)
		return 2
	}
	d := bench.DiffReports(base, cand, bench.DiffOptions{Threshold: *threshold, HardFactor: *hardFail})
	d.Render(stdout)
	switch {
	case len(d.HardRegressions()) > 0:
		fmt.Fprintf(stderr, "benchdiff: FAIL: hard regression (%s)\n", d.ShaPair())
		return 1
	case len(d.Regressions()) > 0 && !*warnOnly:
		fmt.Fprintf(stderr, "benchdiff: FAIL: latency regression beyond threshold (%s)\n", d.ShaPair())
		return 1
	case len(d.Regressions()) > 0:
		fmt.Fprintf(stderr, "benchdiff: WARN: latency regression beyond threshold (warn-only, %s)\n", d.ShaPair())
	}
	return 0
}
