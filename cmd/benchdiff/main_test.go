package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

var testdata = filepath.Join("..", "..", "internal", "bench", "testdata")

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestIdenticalInputsExitZero is the acceptance-criteria case: comparing a
// report against itself exits 0.
func TestIdenticalInputsExitZero(t *testing.T) {
	base := filepath.Join(testdata, "diff_base.json")
	code, out, _ := runCLI(t, base, base)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "0 regression(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestInjectedRegressionExitsNonZero is the acceptance-criteria case: a 2x
// latency regression on a golden input must exit non-zero.
func TestInjectedRegressionExitsNonZero(t *testing.T) {
	code, out, errOut := runCLI(t,
		filepath.Join(testdata, "diff_base.json"),
		filepath.Join(testdata, "diff_regressed.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "regression") || !strings.Contains(errOut, "FAIL") {
		t.Fatalf("output:\n%s%s", out, errOut)
	}
}

// TestWarnOnlyDemotesSoftRegressions: -warn-only turns the 2x soft
// regression into exit 0, but a hard regression (beyond -hard-fail) still
// fails.
func TestWarnOnlyDemotesSoftRegressions(t *testing.T) {
	base := filepath.Join(testdata, "diff_base.json")
	regressed := filepath.Join(testdata, "diff_regressed.json")
	code, _, errOut := runCLI(t, "-warn-only", base, regressed)
	if code != 0 {
		t.Fatalf("warn-only exit = %d, want 0; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "WARN") {
		t.Fatalf("stderr:\n%s", errOut)
	}
	// Tighten the hard tier below the injected 2.0x: now it must fail even
	// with -warn-only.
	code, _, errOut = runCLI(t, "-warn-only", "-hard-fail", "1.5", base, regressed)
	if code != 1 || !strings.Contains(errOut, "hard regression") {
		t.Fatalf("hard-fail exit = %d, stderr:\n%s", code, errOut)
	}
}

func TestUsageAndInputErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "nonexistent.json", "alsomissing.json"); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
	// An odd argument count is a usage error, not a silent half-pair.
	base := filepath.Join(testdata, "diff_base.json")
	if code, _, errOut := runCLI(t, base, base, base); code != 2 || !strings.Contains(errOut, "usage") {
		t.Fatalf("odd-args exit = %d, want 2", code)
	}
}

// TestMultiplePairsAllPass: several baseline/candidate pairs in one
// invocation, all clean, exit 0, and the summary lists every pair.
func TestMultiplePairsAllPass(t *testing.T) {
	base := filepath.Join(testdata, "diff_base.json")
	code, out, _ := runCLI(t, base, base, base, base)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "2 pair(s):") || strings.Count(out, "PASS") != 2 {
		t.Fatalf("summary missing or wrong:\n%s", out)
	}
}

// TestMultiplePairsOneFails: one regressed pair among clean ones fails the
// whole invocation, and the summary shows which pair moved.
func TestMultiplePairsOneFails(t *testing.T) {
	base := filepath.Join(testdata, "diff_base.json")
	regressed := filepath.Join(testdata, "diff_regressed.json")
	code, out, errOut := runCLI(t, base, base, base, regressed)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "PASS "+base+" vs "+base) ||
		!strings.Contains(out, "FAIL "+base+" vs "+regressed) {
		t.Fatalf("summary does not identify the failing pair:\n%s", out)
	}
}
