// Command benchrunner regenerates the paper's evaluation tables and
// figures. Each experiment prints the same series the corresponding figure
// plots, in milliseconds and (with -normalize) as normalized execution
// times. With -json each experiment additionally writes BENCH_<exp>.json —
// the series plus the observability-registry snapshot of the run — the
// machine-readable perf trajectory tracked across PRs.
//
// Usage:
//
//	benchrunner -exp fig7            # one experiment, full scale
//	benchrunner -exp all -quick      # every experiment, scaled down
//	benchrunner -exp fig7 -json      # also write BENCH_fig7.json
//	benchrunner -exp fig7 -json -advisor
//	                                 # embed the shadow-cache what-if report
//	                                 # (capacity sweep, eviction policies,
//	                                 # tenant splits) into BENCH_fig7.json
//	benchrunner -exp fig7 -trace-out traces/
//	                                 # export per-point query traces as
//	                                 # Chrome trace-event JSON (ui.perfetto.dev)
//	benchrunner -debug :8080 ...     # serve /metrics, /debug/series, pprof
//	benchrunner -sample 250ms ...    # time-series scrape interval
//	benchrunner -events events.log   # structured event log ("-" = stderr)
//	benchrunner -exp serve -verify-sample 0.05
//	                                 # shadow-verify 5% of soak queries
//	                                 # against the uncached oracle; the
//	                                 # check/divergence tallies land in the
//	                                 # soak section of BENCH_serve.json
//	benchrunner -bundle-on-fail ...  # on experiment failure, write a
//	                                 # diagnostics bundle (BUNDLE_<exp>.json
//	                                 # in -out) before exiting nonzero
//	benchrunner -list                # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aggcache/internal/bench"
	"aggcache/internal/obs"
	"aggcache/internal/verify"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig6, mem, insert, fig7, fig8, fig9, fig10, fig11, serve, ...) or 'all'")
		quick     = flag.Bool("quick", false, "run the scaled-down configurations")
		normalize = flag.Bool("normalize", false, "additionally print normalized execution times (as the paper plots)")
		jsonOut   = flag.Bool("json", false, "write BENCH_<exp>.json per experiment (series + metrics snapshot)")
		outDir    = flag.String("out", ".", "directory for -json output files")
		debugAddr = flag.String("debug", "", "serve the observability debug endpoint (/metrics, /debug/series, /debug/pprof) on this address while running")
		sample    = flag.Duration("sample", obs.DefaultSampleInterval, "time-series scrape interval for /debug/series (with -debug)")
		events    = flag.String("events", "", "write structured lifecycle events (JSON lines) to this file; \"-\" for stderr")
		workers   = flag.Int("workers", 0, "subjoin worker-pool size per query; 0 = GOMAXPROCS, 1 = sequential")
		online    = flag.Bool("online-merge", false, "run the experiments' delta merges as non-blocking online merges")
		advise    = flag.Bool("advisor", false, "attach a cache decision ledger to the workload experiments and embed the shadow-cache what-if report (capacity/threshold sweeps, policies, tenant splits) into BENCH_<exp>.json")
		recycle   = flag.Bool("recycle", false, "attach the second-level recycler cache (cross-query subjoin and build-table reuse) to the workload experiments' managers; results are identical, only timings change")
		shards    = flag.String("shards", "", "comma-separated shard-count sweep for the shard experiment (e.g. 1,2,8); empty = experiment default; results are identical at every count")
		traceOut  = flag.String("trace-out", "", "directory for per-point query traces as Chrome trace-event JSON (open in ui.perfetto.dev)")
		soak      = flag.Duration("soak", 0, "per-arm duration of the serve soak experiment (0 = experiment default)")
		govern    = flag.Bool("govern", false, "run only the governed arm of the serve soak (skip the ungoverned control arm)")
		verifyRt  = flag.Float64("verify-sample", 0, "fraction of serve-soak queries shadow-verified in the background against the uncached oracle; tallies land in the soak JSON")
		bundleOnF = flag.Bool("bundle-on-fail", false, "write a diagnostics bundle (BUNDLE_<exp>.json in -out) when an experiment fails, before exiting nonzero")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	bench.Workers = *workers
	bench.OnlineMerge = *online
	bench.Advisor = *advise
	bench.Recycle = *recycle
	if *shards != "" {
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchrunner: -shards: bad count %q\n", part)
				os.Exit(2)
			}
			bench.ShardCounts = append(bench.ShardCounts, n)
		}
	}
	bench.SoakDuration = *soak
	bench.SoakGovernedOnly = *govern
	bench.VerifySample = *verifyRt
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: trace-out: %v\n", err)
			os.Exit(1)
		}
		bench.TraceDir = *traceOut
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// Install the event log before any experiment builds a database, so
	// every layer picks it up through obs.Events(). The tee through the
	// line tail feeds the failure bundle's event section.
	eventTail := obs.NewLineTail(obs.DefaultTailLines)
	if *events != "" {
		var w io.Writer = os.Stderr
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		obs.SetDefaultEvents(obs.NewEventLog(io.MultiWriter(w, eventTail)))
	}

	var sampler *obs.Sampler
	if *debugAddr != "" {
		sampler = obs.NewSampler(obs.Default(), obs.SamplerConfig{Interval: *sample})
		sampler.Start()
		defer sampler.Stop()
		addr, err := obs.ServeDebug(*debugAddr, obs.Default(), obs.DebugOptions{Sampler: sampler})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug endpoint on http://%s/metrics (also /debug/series, /debug/pprof)\n", addr)
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.All()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	// failBundle snapshots the observability state into BUNDLE_<id>.json
	// when -bundle-on-fail is set, so a failed run leaves a postmortem
	// artifact behind (CI uploads it).
	failBundle := func(id string) {
		if !*bundleOnF {
			return
		}
		b := verify.Collect(verify.BundleSources{
			Meta:     map[string]string{"binary": "benchrunner", "experiment": id},
			Registry: obs.Default(),
			Sampler:  sampler,
			Events:   eventTail,
		})
		path := fmt.Sprintf("%s/BUNDLE_%s.json", *outDir, id)
		body, err := json.MarshalIndent(b, "", "  ")
		if err == nil {
			err = os.WriteFile(path, body, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: diagnostics bundle: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote diagnostics bundle %s\n", path)
	}

	for _, e := range todo {
		// Each experiment reports into a clean registry so its JSON
		// snapshot describes that experiment alone.
		obs.Default().Reset()
		res, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", e.ID, err)
			failBundle(e.ID)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		if *normalize {
			res.Normalized().Render(os.Stdout)
		}
		if *jsonOut {
			path := fmt.Sprintf("%s/BENCH_%s.json", *outDir, e.ID)
			if err := res.Report(*quick, obs.Default().Snapshot()).WriteFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if bench.TraceDir != "" {
			exported := 0
			for _, ts := range res.Traces {
				if ts.File != "" {
					exported++
				}
			}
			if exported > 0 {
				fmt.Printf("exported %d query trace(s) to %s\n", exported, bench.TraceDir)
			}
		}
	}
}
