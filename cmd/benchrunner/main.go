// Command benchrunner regenerates the paper's evaluation tables and
// figures. Each experiment prints the same series the corresponding figure
// plots, in milliseconds and (with -normalize) as normalized execution
// times.
//
// Usage:
//
//	benchrunner -exp fig7            # one experiment, full scale
//	benchrunner -exp all -quick      # every experiment, scaled down
//	benchrunner -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"aggcache/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig6, mem, insert, fig7, fig8, fig9, fig10, fig11) or 'all'")
		quick     = flag.Bool("quick", false, "run the scaled-down configurations")
		normalize = flag.Bool("normalize", false, "additionally print normalized execution times (as the paper plots)")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.All()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	for _, e := range todo {
		res, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		if *normalize {
			res.Normalized().Render(os.Stdout)
		}
	}
}
